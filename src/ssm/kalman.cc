#include "ssm/kalman.h"

#include <cmath>
#include <limits>

namespace mic::ssm {
namespace {

constexpr double kLogTwoPi = 1.8378770664093453;

bool IsMissing(double x) { return std::isnan(x); }

// RQR' is constant across a pass; computed into ws.rqr via ws scratch.
void ComputeRqrInto(const StateSpaceModel& model, KalmanWorkspace& ws) {
  la::MultiplyInto(model.selection, model.state_noise, &ws.tmp_matrix);
  la::TransposeInto(model.selection, &ws.tmp_matrix2);
  la::MultiplyInto(ws.tmp_matrix, ws.tmp_matrix2, &ws.rqr);
}

// covariance <- T * source * T' + rqr, symmetrized; same accumulation
// order as the operator chain it replaces.
void AdvanceCovariance(const StateSpaceModel& model, KalmanWorkspace& ws,
                       const la::Matrix& source) {
  la::MultiplyInto(model.transition, source, &ws.tmp_matrix);
  la::MultiplyInto(ws.tmp_matrix, ws.transition_transpose,
                   &ws.next_covariance);
  ws.next_covariance += ws.rqr;
  ws.next_covariance.Symmetrize();
  std::swap(ws.covariance, ws.next_covariance);
}

}  // namespace

std::string_view KalmanKernelName(KalmanKernel kernel) {
  switch (kernel) {
    case KalmanKernel::kAuto:
      return "auto";
    case KalmanKernel::kDynamic:
      return "dynamic";
    case KalmanKernel::kFixed:
      return "fixed";
  }
  return "?";
}

KalmanWorkspace& KalmanWorkspace::ThreadLocal() {
  static thread_local KalmanWorkspace workspace;
  return workspace;
}

Result<FilterResult> RunFilter(const StateSpaceModel& model,
                               const std::vector<double>& observations,
                               const KalmanOptions& options) {
  MIC_RETURN_IF_ERROR(model.Validate());
  const std::size_t n = observations.size();

  FilterResult result;
  result.predictions.resize(n);
  result.prediction_variances.resize(n);
  result.innovations.resize(n);
  if (options.store_states) {
    result.predicted_states.reserve(n);
    result.predicted_covariances.reserve(n);
  }

  // All per-step temporaries live in the thread's workspace; the only
  // allocations left in this pass are the result vectors above.
  KalmanWorkspace& ws = KalmanWorkspace::ThreadLocal();
  ++ws.acquires;
  ComputeRqrInto(model, ws);
  la::TransposeInto(model.transition, &ws.transition_transpose);
  ws.state = model.initial_state;                // a_{t|t-1}
  ws.covariance = model.initial_covariance;      // P_{t|t-1}

  int skipped_diffuse = 0;
  double log_likelihood = 0.0;
  int effective = 0;

  // Steady-state shortcut: legal only when Z is time-invariant, the
  // caller does not need per-step covariances, and no observations are
  // missing mid-stream (a gap restarts the covariance transient). Only
  // worth checking when the series is long relative to the state
  // dimension — high-dimensional covariances converge too slowly to
  // amortize the per-step convergence test on short windows (the
  // transient scales roughly with dim^2 for the coupled seasonal
  // states).
  const std::size_t dim = model.state_dim();
  const bool may_go_steady = options.allow_steady_state &&
                             model.time_varying.empty() &&
                             !options.store_states &&
                             n >= dim * dim + 20;
  bool steady = false;
  double steady_variance = 0.0;

  for (std::size_t t = 0; t < n; ++t) {
    model.ObservationVectorInto(t, &ws.z);
    const la::Vector& z = ws.z;
    if (options.store_states) {
      result.predicted_states.push_back(ws.state);
      result.predicted_covariances.push_back(ws.covariance);
    }

    if (!steady) la::MultiplyInto(ws.covariance, z, &ws.pz);
    const la::Vector& pz = steady ? ws.steady_pz : ws.pz;
    const double prediction = la::Dot(z, ws.state);
    const double prediction_variance =
        steady ? steady_variance
               : la::Dot(z, pz) + model.observation_variance;
    result.predictions[t] = prediction;
    result.prediction_variances[t] = prediction_variance;

    const double x = observations[t];
    if (IsMissing(x)) {
      result.innovations[t] = std::numeric_limits<double>::quiet_NaN();
      // No update; just predict forward. A gap invalidates the steady
      // state (the covariance grows through it).
      la::MultiplyInto(model.transition, ws.state, &ws.tmp_vector);
      std::swap(ws.state, ws.tmp_vector);
      if (steady) {
        steady = false;
      }
      AdvanceCovariance(model, ws, ws.covariance);
      continue;
    }

    if (!(prediction_variance > 0.0) ||
        !std::isfinite(prediction_variance)) {
      return Status::NumericError(
          "non-positive prediction variance at t=" + std::to_string(t));
    }

    const double innovation = x - prediction;
    result.innovations[t] = innovation;

    if (prediction_variance > options.diffuse_variance_threshold) {
      ++skipped_diffuse;
    } else {
      log_likelihood -=
          0.5 * (kLogTwoPi + std::log(prediction_variance) +
                 innovation * innovation / prediction_variance);
      ++effective;
    }

    // Measurement update then time update.
    const double gain_scale = innovation / prediction_variance;
    ws.filtered = ws.state;
    for (std::size_t i = 0; i < ws.filtered.size(); ++i) {
      ws.filtered[i] += pz[i] * gain_scale;
    }
    la::MultiplyInto(model.transition, ws.filtered, &ws.tmp_vector);
    std::swap(ws.state, ws.tmp_vector);
    if (steady) continue;  // Covariance frozen.

    ws.filtered_covariance = ws.covariance;
    for (std::size_t r = 0; r < ws.filtered_covariance.rows(); ++r) {
      for (std::size_t c = 0; c < ws.filtered_covariance.cols(); ++c) {
        ws.filtered_covariance(r, c) -=
            pz[r] * pz[c] / prediction_variance;
      }
    }
    la::MultiplyInto(model.transition, ws.filtered_covariance,
                     &ws.tmp_matrix);
    la::MultiplyInto(ws.tmp_matrix, ws.transition_transpose,
                     &ws.next_covariance);
    ws.next_covariance += ws.rqr;
    ws.next_covariance.Symmetrize();
    if (may_go_steady) {
      // Max-abs of (next - current) without forming the difference;
      // identical to the matrix-difference form value by value.
      double max_change = 0.0;
      for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
          max_change = std::max(
              max_change, std::fabs(ws.next_covariance(r, c) -
                                    ws.covariance(r, c)));
        }
      }
      const double scale = std::max(ws.covariance.MaxAbs(), 1e-300);
      if (max_change <= options.steady_state_tolerance * scale) {
        steady = true;
        la::MultiplyInto(ws.next_covariance, z, &ws.steady_pz);
        steady_variance =
            la::Dot(z, ws.steady_pz) + model.observation_variance;
      }
    }
    std::swap(ws.covariance, ws.next_covariance);
  }

  result.log_likelihood = log_likelihood;
  result.effective_observations = effective;
  result.skipped_diffuse = skipped_diffuse;
  result.final_state = ws.state;
  result.final_covariance = ws.covariance;
  return result;
}

Result<RegressionFilterResult> RunFilterWithRegression(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<double>& regressor, const KalmanOptions& options) {
  if (regressor.size() < observations.size()) {
    return Status::InvalidArgument(
        "regressor shorter than the observations");
  }
  MIC_RETURN_IF_ERROR(model.Validate());
  const std::size_t n = observations.size();

  RegressionFilterResult result;
  FilterResult& base = result.base;
  base.predictions.resize(n);
  base.prediction_variances.resize(n);
  base.innovations.resize(n);
  if (options.store_states) {
    base.predicted_states.reserve(n);
    base.predicted_covariances.reserve(n);
  }

  // One fused pass: the gain sequence depends only on the covariance
  // recursion, so the observation series x and the regressor series w
  // share P and F; only the state means differ. state/filtered hold the
  // x recursion, state_aux/filtered_aux the w recursion.
  KalmanWorkspace& ws = KalmanWorkspace::ThreadLocal();
  ++ws.acquires;
  ComputeRqrInto(model, ws);
  la::TransposeInto(model.transition, &ws.transition_transpose);
  ws.state = model.initial_state;
  ws.state_aux.Resize(model.state_dim());
  ws.covariance = model.initial_covariance;

  double log_likelihood = 0.0;
  int effective = 0;
  int skipped_diffuse = 0;
  double s_ww = 0.0;
  double s_wx = 0.0;

  for (std::size_t t = 0; t < n; ++t) {
    model.ObservationVectorInto(t, &ws.z);
    const la::Vector& z = ws.z;
    if (options.store_states) {
      base.predicted_states.push_back(ws.state);
      base.predicted_covariances.push_back(ws.covariance);
    }

    la::MultiplyInto(ws.covariance, z, &ws.pz);
    const la::Vector& pz = ws.pz;
    const double prediction_x = la::Dot(z, ws.state);
    const double prediction_variance =
        la::Dot(z, pz) + model.observation_variance;
    base.predictions[t] = prediction_x;
    base.prediction_variances[t] = prediction_variance;

    const double x = observations[t];
    if (IsMissing(x)) {
      base.innovations[t] = std::numeric_limits<double>::quiet_NaN();
      la::MultiplyInto(model.transition, ws.state, &ws.tmp_vector);
      std::swap(ws.state, ws.tmp_vector);
      la::MultiplyInto(model.transition, ws.state_aux, &ws.tmp_vector);
      std::swap(ws.state_aux, ws.tmp_vector);
      AdvanceCovariance(model, ws, ws.covariance);
      continue;
    }
    if (!(prediction_variance > 0.0) ||
        !std::isfinite(prediction_variance)) {
      return Status::NumericError(
          "non-positive prediction variance at t=" + std::to_string(t));
    }

    const double v_x = x - prediction_x;
    const double v_w = regressor[t] - la::Dot(z, ws.state_aux);
    base.innovations[t] = v_x;

    if (prediction_variance > options.diffuse_variance_threshold) {
      ++skipped_diffuse;
    } else {
      log_likelihood -=
          0.5 * (kLogTwoPi + std::log(prediction_variance) +
                 v_x * v_x / prediction_variance);
      ++effective;
      s_ww += v_w * v_w / prediction_variance;
      s_wx += v_w * v_x / prediction_variance;
    }

    // Shared measurement + time update.
    const double gain_x = v_x / prediction_variance;
    const double gain_w = v_w / prediction_variance;
    ws.filtered = ws.state;
    ws.filtered_aux = ws.state_aux;
    for (std::size_t i = 0; i < ws.filtered.size(); ++i) {
      ws.filtered[i] += pz[i] * gain_x;
      ws.filtered_aux[i] += pz[i] * gain_w;
    }
    ws.filtered_covariance = ws.covariance;
    for (std::size_t r = 0; r < ws.filtered_covariance.rows(); ++r) {
      for (std::size_t c = 0; c < ws.filtered_covariance.cols(); ++c) {
        ws.filtered_covariance(r, c) -=
            pz[r] * pz[c] / prediction_variance;
      }
    }
    la::MultiplyInto(model.transition, ws.filtered, &ws.state);
    la::MultiplyInto(model.transition, ws.filtered_aux, &ws.state_aux);
    AdvanceCovariance(model, ws, ws.filtered_covariance);
  }

  base.log_likelihood = log_likelihood;
  base.effective_observations = effective;
  base.skipped_diffuse = skipped_diffuse;
  base.final_state = ws.state;
  base.final_covariance = ws.covariance;
  if (s_ww > 1e-12) {
    result.identified = true;
    result.lambda = s_wx / s_ww;
    result.lambda_variance = 1.0 / s_ww;
    result.profiled_log_likelihood =
        result.base.log_likelihood + 0.5 * s_wx * s_wx / s_ww;
  } else {
    result.identified = false;
    result.lambda = 0.0;
    result.lambda_variance = std::numeric_limits<double>::infinity();
    result.profiled_log_likelihood = result.base.log_likelihood;
  }
  return result;
}

Result<MultiRegressionFilterResult> RunFilterWithRegressors(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<std::vector<double>>& regressors,
    const KalmanOptions& options) {
  const std::size_t k = regressors.size();
  for (const auto& regressor : regressors) {
    if (regressor.size() < observations.size()) {
      return Status::InvalidArgument(
          "regressor shorter than the observations");
    }
  }
  MIC_RETURN_IF_ERROR(model.Validate());
  const std::size_t n = observations.size();
  const std::size_t dim = model.state_dim();

  MultiRegressionFilterResult result;
  FilterResult& base = result.base;
  base.predictions.resize(n);
  base.prediction_variances.resize(n);
  base.innovations.resize(n);

  // The shared z/pz/covariance recursion borrows the workspace like the
  // plain filter; only the K per-regressor state means stay per-call
  // (their count varies with the query, not the thread).
  KalmanWorkspace& ws = KalmanWorkspace::ThreadLocal();
  ++ws.acquires;
  ComputeRqrInto(model, ws);
  la::TransposeInto(model.transition, &ws.transition_transpose);
  ws.state = model.initial_state;
  std::vector<la::Vector> state_w(k, la::Vector(dim));
  ws.covariance = model.initial_covariance;

  double log_likelihood = 0.0;
  int effective = 0;
  int skipped_diffuse = 0;
  la::Matrix s_ww(k, k);
  la::Vector s_wx(k);
  std::vector<double> v_w(k);

  for (std::size_t t = 0; t < n; ++t) {
    model.ObservationVectorInto(t, &ws.z);
    const la::Vector& z = ws.z;
    la::MultiplyInto(ws.covariance, z, &ws.pz);
    const la::Vector& pz = ws.pz;
    const double prediction_x = la::Dot(z, ws.state);
    const double prediction_variance =
        la::Dot(z, pz) + model.observation_variance;
    base.predictions[t] = prediction_x;
    base.prediction_variances[t] = prediction_variance;

    const double x = observations[t];
    if (IsMissing(x)) {
      base.innovations[t] = std::numeric_limits<double>::quiet_NaN();
      la::MultiplyInto(model.transition, ws.state, &ws.tmp_vector);
      std::swap(ws.state, ws.tmp_vector);
      for (auto& state : state_w) {
        la::MultiplyInto(model.transition, state, &ws.tmp_vector);
        std::swap(state, ws.tmp_vector);
      }
      AdvanceCovariance(model, ws, ws.covariance);
      continue;
    }
    if (!(prediction_variance > 0.0) ||
        !std::isfinite(prediction_variance)) {
      return Status::NumericError(
          "non-positive prediction variance at t=" + std::to_string(t));
    }

    const double v_x = x - prediction_x;
    base.innovations[t] = v_x;
    for (std::size_t j = 0; j < k; ++j) {
      v_w[j] = regressors[j][t] - la::Dot(z, state_w[j]);
    }

    if (prediction_variance > options.diffuse_variance_threshold) {
      ++skipped_diffuse;
    } else {
      log_likelihood -=
          0.5 * (kLogTwoPi + std::log(prediction_variance) +
                 v_x * v_x / prediction_variance);
      ++effective;
      for (std::size_t a = 0; a < k; ++a) {
        s_wx[a] += v_w[a] * v_x / prediction_variance;
        for (std::size_t b = 0; b < k; ++b) {
          s_ww(a, b) += v_w[a] * v_w[b] / prediction_variance;
        }
      }
    }

    const double gain_x = v_x / prediction_variance;
    ws.filtered = ws.state;
    for (std::size_t i = 0; i < dim; ++i) {
      ws.filtered[i] += pz[i] * gain_x;
    }
    for (std::size_t j = 0; j < k; ++j) {
      const double gain_w = v_w[j] / prediction_variance;
      for (std::size_t i = 0; i < dim; ++i) {
        state_w[j][i] += pz[i] * gain_w;
      }
      la::MultiplyInto(model.transition, state_w[j], &ws.tmp_vector);
      std::swap(state_w[j], ws.tmp_vector);
    }
    ws.filtered_covariance = ws.covariance;
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        ws.filtered_covariance(r, c) -=
            pz[r] * pz[c] / prediction_variance;
      }
    }
    la::MultiplyInto(model.transition, ws.filtered, &ws.state);
    AdvanceCovariance(model, ws, ws.filtered_covariance);
  }

  base.log_likelihood = log_likelihood;
  base.effective_observations = effective;
  base.skipped_diffuse = skipped_diffuse;
  base.final_state = ws.state;
  base.final_covariance = ws.covariance;

  result.lambdas.assign(k, 0.0);
  result.profiled_log_likelihood = log_likelihood;
  if (k > 0) {
    // Ridge-free solve; singular (collinear regressors / unidentified
    // coefficients) leaves the result unidentified.
    auto solution = la::CholeskySolve(s_ww, s_wx);
    if (solution.ok()) {
      result.identified = true;
      result.lambdas = solution->data();
      // Profiled gain: 0.5 * s_wx' S_ww^-1 s_wx.
      result.profiled_log_likelihood =
          log_likelihood + 0.5 * la::Dot(s_wx, *solution);
    }
  } else {
    result.identified = true;
  }
  return result;
}

Result<SmootherResult> RunSmoother(const StateSpaceModel& model,
                                   const std::vector<double>& observations) {
  KalmanOptions options;
  options.store_states = true;
  MIC_ASSIGN_OR_RETURN(FilterResult filtered,
                       RunFilter(model, observations, options));

  const std::size_t n = observations.size();
  const std::size_t dim = model.state_dim();
  SmootherResult result;
  result.smoothed_states.assign(n, la::Vector(dim));
  result.smoothed_variances.assign(n, la::Vector(dim));

  // Durbin-Koopman backward recursion on (r, N):
  //   r_{t-1} = Z_t v_t / F_t + L_t' r_t
  //   N_{t-1} = Z_t Z_t' / F_t + L_t' N_t L_t
  //   L_t = T (I - K_t Z_t'),  K_t = P_t Z_t / F_t (filter gain form)
  // At missing times: r_{t-1} = T' r_t, N_{t-1} = T' N_t T.
  la::Vector r(dim);
  la::Matrix big_n(dim, dim);
  for (std::size_t ti = n; ti > 0; --ti) {
    const std::size_t t = ti - 1;
    const la::Vector& a = filtered.predicted_states[t];
    const la::Matrix& p = filtered.predicted_covariances[t];

    if (IsMissing(observations[t])) {
      // With no observation, L_t = T: r_{t-1} = T' r_t, then
      // alphahat_t = a_t + P_t r_{t-1}.
      r = model.transition.Transpose() * r;
      big_n = model.transition.Transpose() * big_n * model.transition;
      big_n.Symmetrize();
      result.smoothed_states[t] = a + p * r;
      const la::Matrix pnp = p * big_n * p;
      for (std::size_t i = 0; i < dim; ++i) {
        result.smoothed_variances[t][i] = p(i, i) - pnp(i, i);
      }
      continue;
    }

    const la::Vector z = model.ObservationVector(t);
    const double f = filtered.prediction_variances[t];
    const double v = filtered.innovations[t];

    // L = T - (T P z) z' / F.
    const la::Vector tpz = model.transition * (p * z);
    la::Matrix l = model.transition;
    for (std::size_t row = 0; row < dim; ++row) {
      for (std::size_t col = 0; col < dim; ++col) {
        l(row, col) -= tpz[row] * z[col] / f;
      }
    }

    la::Vector new_r = l.Transpose() * r;
    for (std::size_t i = 0; i < dim; ++i) new_r[i] += z[i] * v / f;
    la::Matrix new_n = l.Transpose() * big_n * l;
    for (std::size_t row = 0; row < dim; ++row) {
      for (std::size_t col = 0; col < dim; ++col) {
        new_n(row, col) += z[row] * z[col] / f;
      }
    }
    new_n.Symmetrize();
    r = std::move(new_r);
    big_n = std::move(new_n);

    la::Vector smoothed = a + p * r;
    result.smoothed_states[t] = smoothed;
    const la::Matrix pnp = p * big_n * p;
    for (std::size_t i = 0; i < dim; ++i) {
      result.smoothed_variances[t][i] = p(i, i) - pnp(i, i);
    }
  }

  return result;
}

Result<ForecastResult> ForecastAhead(const StateSpaceModel& model,
                                     const std::vector<double>& observations,
                                     int horizon) {
  if (horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  // Append `horizon` missing observations: the filter's one-step
  // predictions over that tail are exactly the multi-step forecasts.
  std::vector<double> extended = observations;
  extended.insert(extended.end(), static_cast<std::size_t>(horizon),
                  std::numeric_limits<double>::quiet_NaN());
  MIC_ASSIGN_OR_RETURN(FilterResult filtered, RunFilter(model, extended));

  ForecastResult result;
  result.mean.assign(filtered.predictions.end() - horizon,
                     filtered.predictions.end());
  result.variance.assign(filtered.prediction_variances.end() - horizon,
                         filtered.prediction_variances.end());
  return result;
}

}  // namespace mic::ssm
