#include "ssm/outliers.h"

#include <algorithm>
#include <cmath>

#include "stats/metrics.h"

namespace mic::ssm {

Result<OutlierReport> DetectOutliers(
    const std::vector<double>& series,
    const OutlierDetectionOptions& options) {
  if (options.threshold_sd <= 0.0) {
    return Status::InvalidArgument("threshold_sd must be positive");
  }
  if (options.max_outliers < 0) {
    return Status::InvalidArgument("max_outliers must be non-negative");
  }

  OutlierReport report;
  StructuralSpec spec = options.base_spec;

  for (int round = 0; round <= options.max_outliers; ++round) {
    MIC_ASSIGN_OR_RETURN(FittedStructuralModel fitted,
                         FitStructuralModel(series, spec, options.fit));
    MIC_ASSIGN_OR_RETURN(Decomposition decomposition,
                         Decompose(fitted, series));

    // Standardize the irregular, excluding months already pulsed.
    std::vector<double> usable;
    usable.reserve(series.size());
    for (std::size_t t = 0; t < series.size(); ++t) {
      if (std::find(report.outlier_months.begin(),
                    report.outlier_months.end(),
                    static_cast<int>(t)) == report.outlier_months.end()) {
        usable.push_back(decomposition.irregular[t]);
      }
    }
    const double sd = stats::StdDev(usable);

    int worst_month = -1;
    double worst_magnitude = 0.0;
    if (sd > 0.0 && round < options.max_outliers) {
      for (std::size_t t = 0; t < series.size(); ++t) {
        if (std::find(report.outlier_months.begin(),
                      report.outlier_months.end(),
                      static_cast<int>(t)) !=
            report.outlier_months.end()) {
          continue;
        }
        const double magnitude =
            std::fabs(decomposition.irregular[t]) / sd;
        if (magnitude > worst_magnitude) {
          worst_magnitude = magnitude;
          worst_month = static_cast<int>(t);
        }
      }
    }

    if (worst_month < 0 || worst_magnitude <= options.threshold_sd) {
      // Report the fitted pulse coefficients as the outlier magnitudes:
      // the pulses were appended after the base interventions in
      // detection order.
      const std::size_t base_count = options.base_spec.interventions.size();
      for (std::size_t i = 0; i < report.outlier_months.size(); ++i) {
        const std::size_t index = base_count + i;
        if (index < fitted.lambdas.size()) {
          report.magnitudes[i] = fitted.lambdas[index];
        }
      }
      report.final_model = std::move(fitted);
      report.decomposition = std::move(decomposition);
      return report;
    }

    report.outlier_months.push_back(worst_month);
    report.magnitudes.push_back(decomposition.irregular[worst_month]);
    spec.interventions.push_back(
        {worst_month, InterventionKind::kPulse});
  }

  return Status::Internal("outlier loop did not terminate");
}

}  // namespace mic::ssm
