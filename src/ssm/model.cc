#include "ssm/model.h"

#include <cmath>

namespace mic::ssm {

la::Vector StateSpaceModel::ObservationVector(std::size_t t) const {
  la::Vector z = observation;
  for (const TimeVaryingObservation& entry : time_varying) {
    if (t < entry.values.size()) {
      z[entry.state_index] = entry.values[t];
    }
  }
  return z;
}

void StateSpaceModel::ObservationVectorInto(std::size_t t,
                                            la::Vector* out) const {
  *out = observation;  // Copy-assign reuses `out`'s buffer.
  for (const TimeVaryingObservation& entry : time_varying) {
    if (t < entry.values.size()) {
      (*out)[entry.state_index] = entry.values[t];
    }
  }
}

Status StateSpaceModel::Validate() const {
  const std::size_t n = state_dim();
  if (n == 0) return Status::InvalidArgument("empty state vector");
  if (transition.rows() != n || transition.cols() != n) {
    return Status::InvalidArgument("transition must be n x n");
  }
  if (selection.rows() != n) {
    return Status::InvalidArgument("selection must have n rows");
  }
  const std::size_t q = selection.cols();
  if (state_noise.rows() != q || state_noise.cols() != q) {
    return Status::InvalidArgument("state noise must be q x q");
  }
  if (initial_state.size() != n) {
    return Status::InvalidArgument("initial state must have n entries");
  }
  if (initial_covariance.rows() != n || initial_covariance.cols() != n) {
    return Status::InvalidArgument("initial covariance must be n x n");
  }
  if (!(observation_variance >= 0.0) ||
      !std::isfinite(observation_variance)) {
    return Status::InvalidArgument("observation variance must be finite");
  }
  for (const TimeVaryingObservation& entry : time_varying) {
    if (entry.state_index >= n) {
      return Status::InvalidArgument("time-varying index out of range");
    }
  }
  if (num_diffuse < 0 || static_cast<std::size_t>(num_diffuse) > n) {
    return Status::InvalidArgument("num_diffuse out of range");
  }
  return Status::OK();
}

}  // namespace mic::ssm
