// Compile-time fixed-dimension Kalman kernels for the structural
// model's small state vectors (level = 1, level + trig seasonal = 5,
// level + 11 dummy seasonal states = 12 at the paper's monthly period).
//
// Each kernel is a twin of the dynamic implementation in kalman.cc: the
// per-step temporaries live in flat stack arrays sized by the template
// parameter instead of heap-backed la:: objects, the loop bounds are
// compile-time constants, and every inner loop replicates the dynamic
// path's floating-point accumulation order exactly (including the
// skip-zero shortcut of la::MultiplyInto and the Symmetrize averaging),
// so the two paths produce bit-identical FilterResults. The win is pure
// overhead removal on the Table V hot path: no buffer Resize/re-zeroing
// per kernel call, no virtual-size indirection, and loop bodies the
// compiler can fully unroll.
//
// Selection happens through KalmanKernel (kalman.h): the Run*Kernel
// dispatchers below resolve kAuto to the fixed path whenever the
// model's state dimension has a compiled kernel and fall back to the
// dynamic path otherwise; kFixed demands a compiled kernel and fails
// loudly when the dimension has none.

#ifndef MICTREND_SSM_KALMAN_FIXED_H_
#define MICTREND_SSM_KALMAN_FIXED_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "ssm/kalman.h"
#include "ssm/model.h"

namespace mic::ssm {

/// True when a compile-time kernel exists for this state dimension.
bool HasFixedKernel(std::size_t state_dim);

/// Fixed-dimension twin of RunFilter. Fails with InvalidArgument when
/// the model's state dimension has no compiled kernel.
Result<FilterResult> RunFilterFixed(const StateSpaceModel& model,
                                    const std::vector<double>& observations,
                                    const KalmanOptions& options = {});

/// Fixed-dimension twin of RunFilterWithRegression.
Result<RegressionFilterResult> RunFilterWithRegressionFixed(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<double>& regressor, const KalmanOptions& options = {});

/// Fixed-dimension twin of RunFilterWithRegressors.
Result<MultiRegressionFilterResult> RunFilterWithRegressorsFixed(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<std::vector<double>>& regressors,
    const KalmanOptions& options = {});

/// Resolves a kernel choice for one model: kAuto picks the fixed path
/// exactly when HasFixedKernel(model.state_dim()).
bool ResolveToFixedKernel(KalmanKernel kernel, const StateSpaceModel& model);

/// Kernel-dispatching entry points: run the fixed or dynamic filter
/// according to `kernel` (bit-identical either way).
Result<FilterResult> RunFilterKernel(KalmanKernel kernel,
                                     const StateSpaceModel& model,
                                     const std::vector<double>& observations,
                                     const KalmanOptions& options = {});

Result<RegressionFilterResult> RunFilterWithRegressionKernel(
    KalmanKernel kernel, const StateSpaceModel& model,
    const std::vector<double>& observations,
    const std::vector<double>& regressor, const KalmanOptions& options = {});

Result<MultiRegressionFilterResult> RunFilterWithRegressorsKernel(
    KalmanKernel kernel, const StateSpaceModel& model,
    const std::vector<double>& observations,
    const std::vector<std::vector<double>>& regressors,
    const KalmanOptions& options = {});

/// Dimension-in-the-type face of the fixed kernels for callers that
/// statically know their state dimension (e.g. FixedKalman<12> for the
/// paper's level + period-12 dummy seasonal model). Forwards to the
/// same compiled kernels as the Run*Fixed free functions after checking
/// the model against StateDim.
template <int StateDim>
struct FixedKalman {
  static constexpr int kStateDim = StateDim;

  /// Whether this dimension has a compiled kernel.
  static bool Supported() {
    return HasFixedKernel(static_cast<std::size_t>(StateDim));
  }

  static Result<FilterResult> Run(const StateSpaceModel& model,
                                  const std::vector<double>& observations,
                                  const KalmanOptions& options = {}) {
    MIC_RETURN_IF_ERROR(CheckDim(model));
    return RunFilterFixed(model, observations, options);
  }

  static Result<RegressionFilterResult> RunWithRegression(
      const StateSpaceModel& model, const std::vector<double>& observations,
      const std::vector<double>& regressor,
      const KalmanOptions& options = {}) {
    MIC_RETURN_IF_ERROR(CheckDim(model));
    return RunFilterWithRegressionFixed(model, observations, regressor,
                                        options);
  }

  static Result<MultiRegressionFilterResult> RunWithRegressors(
      const StateSpaceModel& model, const std::vector<double>& observations,
      const std::vector<std::vector<double>>& regressors,
      const KalmanOptions& options = {}) {
    MIC_RETURN_IF_ERROR(CheckDim(model));
    return RunFilterWithRegressorsFixed(model, observations, regressors,
                                        options);
  }

 private:
  static Status CheckDim(const StateSpaceModel& model) {
    if (model.state_dim() != static_cast<std::size_t>(StateDim)) {
      return Status::InvalidArgument(
          "FixedKalman<" + std::to_string(StateDim) +
          "> given a model of state dimension " +
          std::to_string(model.state_dim()));
    }
    return Status::OK();
  }
};

}  // namespace mic::ssm

#endif  // MICTREND_SSM_KALMAN_FIXED_H_
