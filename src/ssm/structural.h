// Builder for the paper's structural time series models (Eq. 9):
//
//   x_t = mu_t + gamma_t + lambda * w_t + eps_t
//
// with a random-walk level mu and an 11-state stochastic dummy seasonal
// gamma carried in the state vector. The slope-shift intervention
// regressor w_t = max(0, t - t_cp + 1) does NOT enter the state: its
// coefficient lambda is profiled out of the likelihood by innovation-
// space GLS (kalman.h, RunFilterWithRegression), which keeps every AIC
// comparison on identical likelihood terms. The four §VIII-B variants
// are LL, LL+S, LL+I, and LL+S+I.

#ifndef MICTREND_SSM_STRUCTURAL_H_
#define MICTREND_SSM_STRUCTURAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ssm/model.h"

namespace mic::ssm {

/// Sentinel meaning "no change point" (the paper's t_CP = infinity).
inline constexpr int kNoChangePoint = -1;

/// Shape of a structural intervention (Commandeur & Koopman ch. 7).
/// The paper uses the slope shift exclusively (new-medicine and
/// new-indication effects raise the slope); level shifts and pulses are
/// provided for the §IX extension to "more complex changes".
enum class InterventionKind : int {
  /// w_t = max(0, t - t_cp + 1): the trend steepens at the break.
  kSlopeShift = 0,
  /// w_t = 1(t >= t_cp): the series jumps to a new level.
  kLevelShift = 1,
  /// w_t = 1(t == t_cp): a one-month shock (outlier capture).
  kPulse = 2,
};

std::string_view InterventionKindName(InterventionKind kind);

/// One intervention: a change point plus a shape.
struct Intervention {
  int change_point = kNoChangePoint;
  InterventionKind kind = InterventionKind::kSlopeShift;

  friend bool operator==(const Intervention&, const Intervention&) = default;
};

/// Representation of the seasonal component (Commandeur & Koopman ch. 4).
enum class SeasonalForm : int {
  /// period-1 dummy states, gamma_{t+1} = -sum of the previous
  /// period-1 values + noise — the paper's Eq. 9 form.
  kDummy = 0,
  /// `harmonics` stochastic trigonometric cycles (2 states each, except
  /// the Nyquist harmonic which has 1): smoother seasonal shapes with
  /// fewer states when harmonics < period/2.
  kTrigonometric = 1,
};

std::string_view SeasonalFormName(SeasonalForm form);

/// Which components are active.
struct StructuralSpec {
  bool seasonal = false;
  /// Seasonal representation; ignored unless `seasonal`.
  SeasonalForm seasonal_form = SeasonalForm::kDummy;
  /// Number of harmonics for the trigonometric form (1..period/2);
  /// period/2 is equivalent in flexibility to the dummy form.
  int harmonics = 2;
  /// Interventions, each contributing one profiled regression
  /// coefficient. The paper's model uses at most one slope shift; the
  /// multi-break extension (§IX) adds more.
  std::vector<Intervention> interventions;
  /// Seasonal period (the paper's monthly data uses 12).
  int period = 12;

  // -- Single-change-point convenience API (the paper's model shape). --

  /// The first intervention's change point, or kNoChangePoint.
  int change_point() const {
    return interventions.empty() ? kNoChangePoint
                                 : interventions.front().change_point;
  }
  /// Replaces the intervention list with a single slope shift (clears
  /// the list when t_cp is kNoChangePoint).
  void set_change_point(int t_cp,
                        InterventionKind kind = InterventionKind::kSlopeShift) {
    interventions.clear();
    if (t_cp != kNoChangePoint) interventions.push_back({t_cp, kind});
  }

  bool has_intervention() const { return !interventions.empty(); }

  /// Number of estimated variance hyperparameters
  /// (sigma_eps plus sigma_xi, plus sigma_omega when seasonal).
  int NumVarianceParameters() const { return seasonal ? 3 : 2; }

  /// Number of seasonal states under the configured form.
  int NumSeasonalStates() const {
    if (!seasonal) return 0;
    if (seasonal_form == SeasonalForm::kDummy) return period - 1;
    // Each harmonic contributes 2 states; the Nyquist harmonic
    // (frequency pi, only possible for even periods) contributes 1.
    int states = 0;
    for (int j = 1; j <= harmonics; ++j) {
      states += (2 * j == period) ? 1 : 2;
    }
    return states;
  }

  /// Number of diffusely initialized *states* (level + seasonal);
  /// intervention coefficients are profiled regression parameters,
  /// not states.
  int NumDiffuseStates() const { return 1 + NumSeasonalStates(); }

  /// Parameters counted by AIC: diffuse states + variances + one lambda
  /// per intervention.
  int TotalParameters() const {
    return NumDiffuseStates() + NumVarianceParameters() +
           static_cast<int>(interventions.size());
  }

  std::string ToString() const;
};

/// The slope-shift intervention regressor w_t (§V-A), defined for
/// t in [0, length): w_t = t - change_point + 1 for t >= change_point.
std::vector<double> SlopeShiftRegressor(int change_point, int length);

/// Regressor for an arbitrary intervention shape.
std::vector<double> InterventionRegressor(const Intervention& intervention,
                                          int length);

/// Variance hyperparameters of the structural model.
struct StructuralVariances {
  double observation = 1.0;  // sigma_eps^2
  double level = 0.1;        // sigma_xi^2
  double seasonal = 0.01;    // sigma_omega^2 (ignored if no seasonal)
};

/// Assembles the base (level + seasonal) StateSpaceModel; the
/// intervention never enters the state, so the model is valid for any
/// series length.
Result<StateSpaceModel> BuildStructuralModel(
    const StructuralSpec& spec, const StructuralVariances& variances);

/// State-vector layout of the built model (for decomposition).
struct StructuralLayout {
  std::size_t level_index = 0;
  /// First seasonal state. For the dummy form this is gamma_t itself;
  /// for the trigonometric form the observed seasonal is the sum of the
  /// cosine states (every even offset within the seasonal block).
  std::size_t seasonal_index = 1;
  /// Number of seasonal states.
  std::size_t seasonal_count = 0;
  std::size_t state_dim = 1;
};

/// The observed seasonal contribution gamma_t of a smoothed/filtered
/// state vector under `spec`'s seasonal form (0 when not seasonal).
double SeasonalContribution(const StructuralSpec& spec,
                            const StructuralLayout& layout,
                            const la::Vector& state);

StructuralLayout LayoutFor(const StructuralSpec& spec);

}  // namespace mic::ssm

#endif  // MICTREND_SSM_STRUCTURAL_H_
