#include "ssm/decompose.h"

#include "ssm/structural.h"

namespace mic::ssm {

Result<Decomposition> Decompose(const FittedStructuralModel& fitted,
                                const std::vector<double>& series) {
  const std::size_t n = series.size();
  std::vector<std::vector<double>> regressors;
  regressors.reserve(fitted.spec.interventions.size());
  for (const Intervention& intervention : fitted.spec.interventions) {
    regressors.push_back(
        InterventionRegressor(intervention, static_cast<int>(n)));
  }

  // The base components are smoothed on the intervention-adjusted
  // series; the intervention contribution is deterministic given the
  // GLS lambdas.
  std::vector<double> adjusted(series);
  for (std::size_t k = 0; k < regressors.size(); ++k) {
    const double lambda =
        k < fitted.lambdas.size() ? fitted.lambdas[k] : 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      adjusted[t] -= lambda * regressors[k][t];
    }
  }
  MIC_ASSIGN_OR_RETURN(SmootherResult smoothed,
                       RunSmoother(fitted.model, adjusted));
  const StructuralLayout layout = LayoutFor(fitted.spec);

  Decomposition decomposition;
  decomposition.level.resize(n);
  decomposition.seasonal.assign(n, 0.0);
  decomposition.intervention.assign(n, 0.0);
  decomposition.fitted.resize(n);
  decomposition.irregular.resize(n);
  decomposition.lambda = fitted.lambda;

  for (std::size_t t = 0; t < n; ++t) {
    const la::Vector& state = smoothed.smoothed_states[t];
    decomposition.level[t] = state[layout.level_index];
    decomposition.seasonal[t] =
        SeasonalContribution(fitted.spec, layout, state);
    for (std::size_t k = 0; k < regressors.size(); ++k) {
      const double lambda =
          k < fitted.lambdas.size() ? fitted.lambdas[k] : 0.0;
      decomposition.intervention[t] += lambda * regressors[k][t];
    }
    decomposition.fitted[t] = decomposition.level[t] +
                              decomposition.seasonal[t] +
                              decomposition.intervention[t];
    decomposition.irregular[t] = series[t] - decomposition.fitted[t];
  }
  return decomposition;
}

}  // namespace mic::ssm
