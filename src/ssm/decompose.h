// Component decomposition of a fitted structural model (§VII-A):
// smoothed level, seasonal, and intervention components plus the
// irregular remainder — the middle panels of Figs. 6 and 7.

#ifndef MICTREND_SSM_DECOMPOSE_H_
#define MICTREND_SSM_DECOMPOSE_H_

#include <vector>

#include "common/result.h"
#include "ssm/fit.h"
#include "ssm/kalman.h"

namespace mic::ssm {

struct Decomposition {
  std::vector<double> level;         // mu_t
  std::vector<double> seasonal;      // gamma_t (zeros when absent)
  std::vector<double> intervention;  // lambda * w_t (zeros when absent)
  std::vector<double> fitted;        // level + seasonal + intervention
  std::vector<double> irregular;     // x_t - fitted
  /// Smoothed estimate of the intervention scale lambda (0 when absent).
  double lambda = 0.0;
};

/// Smooths `series` under `fitted` and splits it into components.
Result<Decomposition> Decompose(const FittedStructuralModel& fitted,
                                const std::vector<double>& series);

}  // namespace mic::ssm

#endif  // MICTREND_SSM_DECOMPOSE_H_
