// Maximum-likelihood fitting of structural models: Nelder-Mead over the
// log-variance hyperparameters around the Kalman filter, with the
// intervention coefficient lambda profiled out by innovation-space GLS,
// plus the AIC used for model comparison and change point selection
// (§V-B).
//
// AIC convention (after Commandeur & Koopman):
//   AIC = -2 logL + 2 (d + w + [intervention])
// with d = diffusely initialized states and w = estimated variances.
// Because lambda is profiled on exactly the likelihood terms the base
// model uses, AICs of all candidate change points and the
// no-intervention model are directly comparable.

#ifndef MICTREND_SSM_FIT_H_
#define MICTREND_SSM_FIT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ssm/kalman.h"
#include "ssm/optimizer.h"
#include "ssm/structural.h"

namespace mic::obs {
class MetricsRegistry;
}  // namespace mic::obs

namespace mic::ssm {

/// One options struct for the ssm::Fit* entry points, mirroring the
/// layered trend::PipelineConfig idiom: every knob is a named field with
/// a Validate() that reports the exact field path, and the fixed/dynamic
/// Kalman kernel choice is one explicit field instead of an overload
/// set.
struct FitOptions {
  /// Which filter implementation runs the Kalman passes. kAuto resolves
  /// to the compile-time fixed-dimension kernel when the model's state
  /// dimension has one (bit-exact with the dynamic path) and to the
  /// dynamic path otherwise; kFixed fails the fit up front when the
  /// dimension has no compiled kernel.
  KalmanKernel kernel = KalmanKernel::kAuto;
  NelderMeadOptions optimizer;
  /// Nelder-Mead restarts from the incumbent optimum with a halved
  /// initial step; cheap insurance against premature simplex collapse
  /// on flat likelihood ridges.
  int restarts = 1;
  /// Optional metrics sink (not owned; null disables). Each successful
  /// fit adds to ssm.fits, ssm.nelder_mead_evaluations, and
  /// ssm.kalman_passes — all pure functions of the input series, so
  /// they stay bit-identical at any thread count.
  obs::MetricsRegistry* metrics = nullptr;

  /// Field-path diagnostics in the PipelineConfig style
  /// ("fit.restarts must be >= 0").
  Status Validate() const;
};

/// A fitted structural model.
struct FittedStructuralModel {
  StructuralSpec spec;
  StructuralVariances variances;
  /// Base (level + seasonal) model bound to the ML variances.
  StateSpaceModel model;
  /// GLS estimates of the intervention scales, aligned with
  /// spec.interventions (empty when no intervention).
  std::vector<double> lambdas;
  /// Convenience: the first intervention's scale (0 when none).
  double lambda = 0.0;
  /// Sampling variance of the single lambda (meaningful only for
  /// one-intervention specs; infinity otherwise).
  double lambda_variance = 0.0;
  double log_likelihood = 0.0;
  double aic = 0.0;
  int optimizer_evaluations = 0;
  /// Kalman filter passes this fit ran (optimizer evaluations plus the
  /// final lambda pass); what ssm.kalman_passes aggregates.
  std::uint64_t kalman_passes = 0;
};

/// Fits `spec` to `series` by maximum likelihood. Requires at least
/// spec.NumDiffuseStates() + 2 observations, and change_point (if any)
/// inside the series.
Result<FittedStructuralModel> FitStructuralModel(
    const std::vector<double>& series, const StructuralSpec& spec,
    const FitOptions& options = {});

/// AIC of a fitted model given the spec's parameter accounting.
double StructuralAic(double log_likelihood, const StructuralSpec& spec);

/// Mean forecasts `horizon` steps ahead: the base components are
/// forecast by the Kalman filter and the intervention contribution
/// lambda * w_t is extended deterministically.
Result<ForecastResult> ForecastStructural(
    const FittedStructuralModel& fitted, const std::vector<double>& series,
    int horizon);

}  // namespace mic::ssm

#endif  // MICTREND_SSM_FIT_H_
