// Linear Gaussian state space model with a univariate observation:
//
//   x_t     = Z_t' a_t + eps_t,        eps_t ~ N(0, h)
//   a_{t+1} = T a_t + R eta_t,         eta_t ~ N(0, Q)
//
// Z_t may vary over time through sparse overrides (the intervention
// regressor w_t of §V enters this way). Nonstationary states are
// initialized with the big-kappa approximate diffuse prior (Commandeur &
// Koopman); the first `num_diffuse` prediction errors are excluded from
// the log-likelihood and AIC accounts for them (see fit.h).

#ifndef MICTREND_SSM_MODEL_H_
#define MICTREND_SSM_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "la/matrix.h"

namespace mic::ssm {

/// Time-varying entry of the observation vector: state `state_index`
/// is observed with coefficient `values[t]` at time t.
struct TimeVaryingObservation {
  std::size_t state_index = 0;
  std::vector<double> values;
};

/// Full specification of one model instance (all hyperparameters bound).
struct StateSpaceModel {
  /// T: state transition (n x n).
  la::Matrix transition;
  /// R: selection matrix (n x q) mapping state noise into states.
  la::Matrix selection;
  /// Q: state noise covariance (q x q).
  la::Matrix state_noise;
  /// h: observation noise variance.
  double observation_variance = 0.0;
  /// Fixed part of Z (length n).
  la::Vector observation;
  /// Sparse time-varying overrides of Z entries.
  std::vector<TimeVaryingObservation> time_varying;
  /// a_1: initial state mean.
  la::Vector initial_state;
  /// P_1: initial state covariance (big kappa on diffuse states).
  la::Matrix initial_covariance;
  /// Number of diffusely initialized states; the first this-many
  /// prediction errors are dropped from the log-likelihood.
  int num_diffuse = 0;

  std::size_t state_dim() const { return observation.size(); }

  /// Z_t for a given time.
  la::Vector ObservationVector(std::size_t t) const;

  /// Z_t computed into a preallocated vector (same values as
  /// ObservationVector; the filter hot loop reuses one buffer).
  void ObservationVectorInto(std::size_t t, la::Vector* out) const;

  /// Structural validation (dimension agreement, finite variances).
  Status Validate() const;
};

/// Conventional value of the big-kappa diffuse prior variance, assuming
/// observations are scaled to O(1)-O(100).
inline constexpr double kDiffuseKappa = 1e7;

}  // namespace mic::ssm

#endif  // MICTREND_SSM_MODEL_H_
