// Sliding-window telemetry (mic::obs v3): rolling latency/error/rate
// aggregation for a live daemon, complementing the cumulative-since-
// start registry in metrics.h.
//
// A WindowRegistry holds named channels (one per serve endpoint or
// internal stage). Each channel is a fixed ring of time slots
// (default 10 s x 60 slots = a 10-minute horizon); a slot embeds one
// obs::Histogram plus error/count atomics and is stamped with the
// absolute slot epoch it currently holds. Recording is lock-free: the
// recorder computes the current epoch from the clock, CASes the slot's
// epoch forward if the ring has wrapped past it (the CAS winner resets
// the slot), and then observes into the slot's histogram. Aggregation
// merges the slots whose epoch falls inside the requested lookback and
// derives count, error rate, rps, mean, and p50/p95/p99 from the merged
// buckets.
//
// Concurrency contract: every field a recorder or reader touches is an
// atomic, so the structure is race-free (TSan-clean) at any thread
// count. Samples racing a slot turnover can land in a slot that is
// being reset and be lost, and an aggregation racing a turnover skips
// the slot it caught mid-reset — bounded smear that telemetry
// tolerates, never a torn value. Single-threaded use with an injected
// clock is exactly deterministic, which is what the tests pin.
//
// The clock is injectable (nanoseconds, monotone) so tests drive the
// window by hand; the default is the steady clock relative to the
// registry's construction.

#ifndef MICTREND_OBS_WINDOW_H_
#define MICTREND_OBS_WINDOW_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace mic::obs {

/// Shape of every channel in a WindowRegistry.
struct WindowOptions {
  /// Width of one slot. The effective horizon is
  /// slot_width_ns * num_slots; lookbacks are rounded up to whole
  /// slots and clamped to the horizon.
  std::uint64_t slot_width_ns = 10ull * 1000ull * 1000ull * 1000ull;
  std::size_t num_slots = 60;
  /// Ascending histogram upper edges for Record() values (seconds for
  /// latency channels). Empty = DefaultLatencyEdgesSeconds().
  std::vector<double> value_edges;
  /// The lookbacks ToJson() and the OpenMetrics renderer export,
  /// in seconds ("the last 1/5/10 minutes").
  std::vector<std::uint64_t> lookback_seconds = {60, 300, 600};
};

/// 100 us .. 10 s exponential ladder, wide enough for a poll-bound
/// health round trip and a cold report_csv alike.
const std::vector<double>& DefaultLatencyEdgesSeconds();

/// One lookback's merged view of a channel.
struct WindowStats {
  std::uint64_t count = 0;   // Record() observations + AddCount() deltas
  std::uint64_t errors = 0;
  double rps = 0.0;          // count / lookback seconds
  double error_rate = 0.0;   // errors / count (0 when count == 0)
  double mean = 0.0;         // mean of Record() values
  double p50 = 0.0;          // bucket-upper-edge quantiles of Record()
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;          // upper edge of the highest non-empty bucket
};

class WindowRegistry;

/// One endpoint's (or stage's) slot ring. Create via
/// WindowRegistry::channel(); handles are stable for the registry's
/// lifetime, so resolve once and record lock-free.
class WindowedChannel {
 public:
  /// Observes one value (seconds for latency channels) in the current
  /// slot; `error` additionally advances the slot's error count.
  void Record(double value, bool error = false);

  /// Advances the current slot's count by `delta` without touching the
  /// value histogram — for channels that window a rate of externally
  /// counted events (trace-ring drops), where only count/rps are
  /// meaningful.
  void AddCount(std::uint64_t delta);

  /// Merged stats over the trailing `lookback_ns` (rounded up to whole
  /// slots, clamped to the ring horizon), ending at the current
  /// (partial) slot.
  WindowStats Aggregate(std::uint64_t lookback_ns) const;

 private:
  friend class WindowRegistry;

  struct Slot {
    explicit Slot(std::vector<double> edges) : hist(std::move(edges)) {}
    /// Absolute slot index (NowNs / slot_width) this slot holds, or
    /// kEmptyEpoch before first use.
    std::atomic<std::uint64_t> epoch{kEmptyEpoch};
    std::atomic<std::uint64_t> errors{0};
    /// AddCount() deltas; kept apart from hist so count-only channels
    /// do not skew the value quantiles.
    std::atomic<std::uint64_t> extra{0};
    Histogram hist;
  };

  static constexpr std::uint64_t kEmptyEpoch = ~std::uint64_t{0};

  explicit WindowedChannel(const WindowRegistry* owner);

  /// The slot for the current epoch, turning the ring over (CAS +
  /// reset) when the wheel has moved past it. Null when this thread
  /// lost a turnover race against a slot already past its epoch.
  Slot* ActiveSlot();

  const WindowRegistry* owner_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Thread-safe registry of named windowed channels. The mutex guards
/// only channel creation and enumeration; recording into a resolved
/// channel never locks.
class WindowRegistry {
 public:
  /// Nanoseconds on a monotone clock; injectable for deterministic
  /// tests. The default is steady-clock time since construction.
  using ClockFn = std::function<std::uint64_t()>;

  explicit WindowRegistry(WindowOptions options = {}, ClockFn clock = {});

  WindowRegistry(const WindowRegistry&) = delete;
  WindowRegistry& operator=(const WindowRegistry&) = delete;

  /// Finds or creates the named channel. Names follow the metric
  /// convention ("serve.health", "serve.swap.drain").
  WindowedChannel* channel(std::string_view name);

  std::uint64_t NowNs() const;
  const WindowOptions& options() const { return options_; }

  /// Every channel, name-ascending. Handles stay valid for the
  /// registry's lifetime.
  std::vector<std::pair<std::string, const WindowedChannel*>> Channels()
      const;

  /// Deterministic snapshot of every channel at every configured
  /// lookback:
  /// {"slot_width_seconds":10,"slots":60,"windows":{"60s":{"serve.health":
  /// {"count":...,"errors":...,"rps":...,"error_rate":...,"mean":...,
  /// "p50":...,"p95":...,"p99":...,"max":...},...},...}}
  /// This exact payload backs both the HTTP /varz body and the framed
  /// `stats` op, so the two can never drift.
  std::string ToJson() const;

 private:
  WindowOptions options_;
  ClockFn clock_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<WindowedChannel>, std::less<>>
      channels_;
};

/// Null-safe resolution and updates, mirroring the metrics.h helpers.
inline WindowedChannel* GetWindowChannel(WindowRegistry* windows,
                                         std::string_view name) {
  return windows == nullptr ? nullptr : windows->channel(name);
}
inline void Record(WindowedChannel* channel, double value,
                   bool error = false) {
  if (channel != nullptr) channel->Record(value, error);
}
inline void AddCount(WindowedChannel* channel, std::uint64_t delta) {
  if (channel != nullptr) channel->AddCount(delta);
}

}  // namespace mic::obs

#endif  // MICTREND_OBS_WINDOW_H_
