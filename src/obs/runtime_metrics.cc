#include "obs/runtime_metrics.h"

namespace mic::obs {

void FoldRuntimeStats(const runtime::RuntimeStats& stats, int num_threads,
                      MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->gauge("runtime.threads")
      ->Set(static_cast<double>(num_threads));
  for (const runtime::StageStats& stage : stats.stages) {
    const std::string prefix = "runtime." + stage.stage;
    registry->counter(prefix + ".calls")->Increment(stage.calls);
    registry->counter(prefix + ".tasks")->Increment(stage.tasks);
    registry->counter(prefix + ".items")->Increment(stage.items);
    registry->gauge(prefix + ".wall_seconds")->Add(stage.wall_seconds);
    registry->gauge(prefix + ".busy_seconds")->Add(stage.busy_seconds);
    registry->gauge(prefix + ".wait_seconds")->Add(stage.wait_seconds);
  }
}

}  // namespace mic::obs
