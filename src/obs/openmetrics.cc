#include "obs/openmetrics.h"

#include <cmath>
#include <vector>

#include "common/strings.h"

namespace mic::obs {
namespace {

// OpenMetrics numbers: integers verbatim, doubles via round-tripping
// %.17g; non-finite values are spelled the way the exposition format
// defines them.
std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return StrFormat("%.17g", value);
}

std::string FormatValue(std::uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

// Escapes a HELP text or label value: backslash, double quote (labels
// travel inside quotes), and newline.
void AppendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void AppendFamilyHeader(std::string& out, const std::string& family,
                        const char* type, std::string_view help) {
  out += "# HELP ";
  out += family;
  out += ' ';
  AppendEscaped(out, help);
  out += '\n';
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

void AppendLabel(std::string& out, bool& first, std::string_view key,
                 std::string_view value) {
  out += first ? "{" : ",";
  first = false;
  out += key;
  out += "=\"";
  AppendEscaped(out, value);
  out += '"';
}

std::string WindowLabel(std::uint64_t lookback_seconds) {
  return StrFormat("%llus",
                   static_cast<unsigned long long>(lookback_seconds));
}

// One windowed gauge family across every channel x lookback.
template <typename ValueFn>
void AppendWindowFamily(
    std::string& out, const WindowRegistry& windows,
    const std::vector<std::pair<std::string, const WindowedChannel*>>&
        channels,
    const std::string& family, std::string_view help, ValueFn&& value_of) {
  AppendFamilyHeader(out, family, "gauge", help);
  for (const auto& [name, channel] : channels) {
    for (const std::uint64_t lookback :
         windows.options().lookback_seconds) {
      const WindowStats stats =
          channel->Aggregate(lookback * 1000ull * 1000ull * 1000ull);
      out += family;
      bool first = true;
      AppendLabel(out, first, "channel", name);
      AppendLabel(out, first, "window", WindowLabel(lookback));
      out += "} ";
      out += value_of(stats);
      out += '\n';
    }
  }
}

}  // namespace

std::string OpenMetricsName(std::string_view name) {
  std::string out = "mictrend_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsRegistry* metrics,
                              const WindowRegistry* windows) {
  std::string out;
  if (metrics != nullptr) {
    for (const auto& [name, value] : metrics->SnapshotCounters()) {
      const std::string family = OpenMetricsName(name);
      AppendFamilyHeader(out, family, "counter", name);
      out += family + "_total " + FormatValue(value) + '\n';
    }
    for (const auto& [name, value] : metrics->SnapshotGauges()) {
      const std::string family = OpenMetricsName(name);
      AppendFamilyHeader(out, family, "gauge", name);
      out += family + ' ' + FormatValue(value) + '\n';
    }
    for (const auto& [name, value] : metrics->SnapshotTimers()) {
      const std::string calls = OpenMetricsName(name) + "_calls";
      AppendFamilyHeader(out, calls, "counter", name + " (count)");
      out += calls + "_total " + FormatValue(value.count) + '\n';
      const std::string seconds = OpenMetricsName(name) + "_seconds";
      AppendFamilyHeader(out, seconds, "counter", name + " (seconds)");
      out += seconds + "_total " + FormatValue(value.seconds) + '\n';
    }
    for (const auto& [name, value] : metrics->SnapshotHistograms()) {
      const std::string family = OpenMetricsName(name);
      AppendFamilyHeader(out, family, "histogram", name);
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < value.buckets.size(); ++i) {
        cumulative += value.buckets[i];
        out += family + "_bucket{le=\"";
        out += i < value.edges.size() ? FormatValue(value.edges[i])
                                      : std::string("+Inf");
        out += "\"} " + FormatValue(cumulative) + '\n';
      }
      out += family + "_count " + FormatValue(value.count) + '\n';
      out += family + "_sum " + FormatValue(value.sum) + '\n';
    }
  }

  if (windows != nullptr) {
    const auto channels = windows->Channels();
    AppendWindowFamily(out, *windows, channels,
                       "mictrend_window_requests",
                       "windowed request count per channel",
                       [](const WindowStats& stats) {
                         return FormatValue(stats.count);
                       });
    AppendWindowFamily(out, *windows, channels, "mictrend_window_errors",
                       "windowed error count per channel",
                       [](const WindowStats& stats) {
                         return FormatValue(stats.errors);
                       });
    AppendWindowFamily(out, *windows, channels, "mictrend_window_rps",
                       "windowed request rate per channel",
                       [](const WindowStats& stats) {
                         return FormatValue(stats.rps);
                       });
    AppendWindowFamily(out, *windows, channels,
                       "mictrend_window_error_rate",
                       "windowed error rate per channel",
                       [](const WindowStats& stats) {
                         return FormatValue(stats.error_rate);
                       });
    // Quantiles share one family with a quantile label, so the three
    // per-window samples stay contiguous within it.
    const std::string family = "mictrend_window_latency_seconds";
    AppendFamilyHeader(out, family, "gauge",
                       "windowed latency quantiles per channel");
    for (const auto& [name, channel] : channels) {
      for (const std::uint64_t lookback :
           windows->options().lookback_seconds) {
        const WindowStats stats =
            channel->Aggregate(lookback * 1000ull * 1000ull * 1000ull);
        const std::pair<const char*, double> quantiles[] = {
            {"0.5", stats.p50}, {"0.95", stats.p95}, {"0.99", stats.p99}};
        for (const auto& [quantile, value] : quantiles) {
          out += family;
          bool first = true;
          AppendLabel(out, first, "channel", name);
          AppendLabel(out, first, "window", WindowLabel(lookback));
          AppendLabel(out, first, "quantile", quantile);
          out += "} " + FormatValue(value) + '\n';
        }
      }
    }
  }

  out += "# EOF\n";
  return out;
}

}  // namespace mic::obs
