// RAII stage tracing on top of the metrics registry and the event
// trace buffer.
//
// A Span names one pipeline stage; nested spans build a '/'-joined path
// on a thread-local stack (pipeline -> pipeline/reproduce ->
// pipeline/reproduce/em_fit). At destruction each span records
// {count, seconds} into the registry's timer of the same path, and —
// when a TraceLog travels in the ExecContext — emits a begin/end event
// pair onto the calling thread's trace timeline.
//
// Spans cover the serial skeleton of a run. Per-item work inside a
// parallel stage uses a pre-resolved Timer with ScopedTimer (worker
// threads do not inherit the caller's span stack); wrapping the chunk
// function with obs::TraceChunks() (trace_log.h) is what carries the
// caller's span path across the pool boundary, after which nested
// spans/timers on the worker resolve against the chunk's path.
//
// Both types are inert when constructed against null sinks: no clock
// read, no stack traffic.

#ifndef MICTREND_OBS_TRACE_H_
#define MICTREND_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>

#include "common/exec_context.h"
#include "obs/metrics.h"

namespace mic::obs {

class TraceLog;

/// One nested, named stage. Must be destroyed in LIFO order on the
/// thread that created it (the natural shape of a scoped local).
class Span {
 public:
  Span(MetricsRegistry* registry, std::string_view name);
  /// Records into both of the context's sinks (either may be null).
  Span(const ExecContext& context, std::string_view name);
  /// Stack-only span: installs `path` verbatim as this thread's current
  /// span path without recording anything. Used by TraceChunks to carry
  /// the dispatching thread's nesting onto pool workers.
  explicit Span(std::string path);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Full '/'-joined path of this span ("pipeline/reproduce").
  const std::string& path() const { return path_; }

  /// Path of the innermost live span on this thread ("" when none).
  static std::string CurrentPath();

 private:
  Span(MetricsRegistry* registry, TraceLog* trace, std::string_view name);

  MetricsRegistry* registry_ = nullptr;
  TraceLog* trace_ = nullptr;
  bool engaged_ = false;
  Span* parent_ = nullptr;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Records one {count, duration} observation into a timer. The
/// Timer*-taking constructor is the hot-path form: resolve the handle
/// once, then construct against it per item (null handle = inert).
/// The three-argument form additionally emits `<CurrentPath()>/<name>`
/// begin/end events onto `trace` (null trace = timer only), putting
/// per-item work on the trace timeline.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer);
  ScopedTimer(MetricsRegistry* registry, std::string_view name);
  ScopedTimer(Timer* timer, TraceLog* trace, std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  TraceLog* trace_ = nullptr;
  std::string trace_path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mic::obs

#endif  // MICTREND_OBS_TRACE_H_
