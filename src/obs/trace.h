// RAII stage tracing on top of the metrics registry.
//
// A Span names one pipeline stage; nested spans build a '/'-joined path
// on a thread-local stack (pipeline -> pipeline/reproduce ->
// pipeline/reproduce/em_fit), and each span records {count, seconds}
// into the registry's timer of the same path at destruction. Spans are
// for the coarse serial skeleton of a run; per-item work inside a
// parallel stage uses a pre-resolved Timer with ScopedTimer, because
// worker threads do not inherit the caller's span stack.
//
// Both types are inert when constructed against a null registry: no
// clock read, no stack traffic.

#ifndef MICTREND_OBS_TRACE_H_
#define MICTREND_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace mic::obs {

/// One nested, named stage. Must be destroyed in LIFO order on the
/// thread that created it (the natural shape of a scoped local).
class Span {
 public:
  Span(MetricsRegistry* registry, std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Full '/'-joined path of this span ("pipeline/reproduce").
  const std::string& path() const { return path_; }

  /// Path of the innermost live span on this thread ("" when none).
  static std::string CurrentPath();

 private:
  MetricsRegistry* registry_;
  Span* parent_ = nullptr;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Records one {count, duration} observation into a timer. The
/// Timer*-taking constructor is the hot-path form: resolve the handle
/// once, then construct against it per item (null handle = inert).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer);
  ScopedTimer(MetricsRegistry* registry, std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mic::obs

#endif  // MICTREND_OBS_TRACE_H_
