#include "obs/trace.h"

namespace mic::obs {
namespace {

using Clock = std::chrono::steady_clock;

thread_local Span* tl_current_span = nullptr;

std::uint64_t NanosSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

Span::Span(MetricsRegistry* registry, std::string_view name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  parent_ = tl_current_span;
  path_ = parent_ == nullptr ? std::string(name)
                             : parent_->path_ + '/' + std::string(name);
  tl_current_span = this;
  start_ = Clock::now();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  registry_->timer(path_)->Record(NanosSince(start_));
  tl_current_span = parent_;
}

std::string Span::CurrentPath() {
  return tl_current_span == nullptr ? std::string()
                                    : tl_current_span->path_;
}

ScopedTimer::ScopedTimer(Timer* timer) : timer_(timer) {
  if (timer_ != nullptr) start_ = Clock::now();
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string_view name)
    : ScopedTimer(registry == nullptr ? nullptr : registry->timer(name)) {}

ScopedTimer::~ScopedTimer() {
  if (timer_ != nullptr) timer_->Record(NanosSince(start_));
}

}  // namespace mic::obs
