#include "obs/trace.h"

#include "obs/trace_log.h"

namespace mic::obs {
namespace {

using Clock = std::chrono::steady_clock;

thread_local Span* tl_current_span = nullptr;

std::uint64_t NanosSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

Span::Span(MetricsRegistry* registry, std::string_view name)
    : Span(registry, nullptr, name) {}

Span::Span(const ExecContext& context, std::string_view name)
    : Span(context.metrics, context.trace, name) {}

Span::Span(MetricsRegistry* registry, TraceLog* trace,
           std::string_view name)
    : registry_(registry), trace_(trace) {
  if (registry_ == nullptr && trace_ == nullptr) return;
  engaged_ = true;
  parent_ = tl_current_span;
  path_ = parent_ == nullptr ? std::string(name)
                             : parent_->path_ + '/' + std::string(name);
  tl_current_span = this;
  if (trace_ != nullptr) trace_->BeginEvent(path_);
  if (registry_ != nullptr) start_ = Clock::now();
}

Span::Span(std::string path) : engaged_(true), path_(std::move(path)) {
  parent_ = tl_current_span;
  tl_current_span = this;
}

Span::~Span() {
  if (!engaged_) return;
  if (registry_ != nullptr) {
    registry_->timer(path_)->Record(NanosSince(start_));
  }
  if (trace_ != nullptr) trace_->EndEvent(path_);
  tl_current_span = parent_;
}

std::string Span::CurrentPath() {
  return tl_current_span == nullptr ? std::string()
                                    : tl_current_span->path_;
}

ScopedTimer::ScopedTimer(Timer* timer) : timer_(timer) {
  if (timer_ != nullptr) start_ = Clock::now();
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string_view name)
    : ScopedTimer(registry == nullptr ? nullptr : registry->timer(name)) {}

ScopedTimer::ScopedTimer(Timer* timer, TraceLog* trace,
                         std::string_view name)
    : timer_(timer), trace_(trace) {
  if (trace_ != nullptr) {
    trace_path_ = Span::CurrentPath();
    if (trace_path_.empty()) {
      trace_path_.assign(name);
    } else {
      trace_path_ += '/';
      trace_path_ += std::string(name);
    }
    trace_->BeginEvent(trace_path_);
  }
  if (timer_ != nullptr || trace_ != nullptr) start_ = Clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (timer_ != nullptr) timer_->Record(NanosSince(start_));
  if (trace_ != nullptr) trace_->EndEvent(trace_path_);
}

}  // namespace mic::obs
