#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/strings.h"

namespace mic::obs {
namespace {

// %.17g round-trips doubles exactly and stays valid JSON for finite
// values; the metrics here (seconds, likelihood deltas) are finite by
// construction.
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);
}

std::string FormatUint(std::uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

template <typename Map, typename Fn>
void AppendSection(std::string& out, const char* section, const Map& map,
                   Fn&& format_value, bool& first_section) {
  if (!first_section) out += ',';
  first_section = false;
  out += '"';
  out += section;
  out += "\":{";
  bool first = true;
  for (const auto& [name, metric] : map) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += format_value(*metric);
  }
  out += '}';
}

std::string HistogramJson(const Histogram& histogram) {
  std::string out = "{\"count\":" + FormatUint(histogram.count()) +
                    ",\"sum\":" + FormatDouble(histogram.sum()) +
                    ",\"buckets\":[";
  const std::vector<double>& edges = histogram.edges();
  for (std::size_t i = 0; i <= edges.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"le\":";
    out += i < edges.size() ? FormatDouble(edges[i]) : "\"inf\"";
    out += ",\"count\":" + FormatUint(histogram.bucket_count(i)) + '}';
  }
  out += "]}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      edges_.size() + 1);
  for (std::size_t i = 0; i <= edges_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  const auto it =
      std::lower_bound(edges_.begin(), edges_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - edges_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Timer* MetricsRegistry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::move(edges))))
             .first;
  }
  return it->second.get();
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::CountersToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":" + FormatUint(counter->value());
  }
  out += '}';
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first_section = true;
  AppendSection(out, "counters", counters_,
                [](const Counter& counter) {
                  return FormatUint(counter.value());
                },
                first_section);
  AppendSection(out, "gauges", gauges_,
                [](const Gauge& gauge) {
                  return FormatDouble(gauge.value());
                },
                first_section);
  AppendSection(out, "timers", timers_,
                [](const Timer& timer) {
                  return "{\"count\":" + FormatUint(timer.count()) +
                         ",\"seconds\":" + FormatDouble(timer.seconds()) +
                         '}';
                },
                first_section);
  AppendSection(out, "histograms", histograms_, HistogramJson,
                first_section);
  out += '}';
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, counter] : counters_) {
    out += "counter," + name + ",value," + FormatUint(counter->value()) +
           '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "gauge," + name + ",value," + FormatDouble(gauge->value()) +
           '\n';
  }
  for (const auto& [name, timer] : timers_) {
    out += "timer," + name + ",count," + FormatUint(timer->count()) + '\n';
    out += "timer," + name + ",seconds," + FormatDouble(timer->seconds()) +
           '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "histogram," + name + ",count," +
           FormatUint(histogram->count()) + '\n';
    out += "histogram," + name + ",sum," +
           FormatDouble(histogram->sum()) + '\n';
    const std::vector<double>& edges = histogram->edges();
    for (std::size_t i = 0; i <= edges.size(); ++i) {
      out += "histogram," + name + ",le_" +
             (i < edges.size() ? FormatDouble(edges[i]) : "inf") + ',' +
             FormatUint(histogram->bucket_count(i)) + '\n';
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, MetricsRegistry::TimerValue>>
MetricsRegistry::SnapshotTimers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, TimerValue>> out;
  out.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) {
    out.emplace_back(name, TimerValue{timer->count(), timer->seconds()});
  }
  return out;
}

std::vector<std::pair<std::string, MetricsRegistry::HistogramValue>>
MetricsRegistry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramValue>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramValue value;
    value.edges = histogram->edges();
    value.buckets.reserve(value.edges.size() + 1);
    for (std::size_t i = 0; i <= value.edges.size(); ++i) {
      value.buckets.push_back(histogram->bucket_count(i));
    }
    value.count = histogram->count();
    value.sum = histogram->sum();
    out.emplace_back(name, std::move(value));
  }
  return out;
}

Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << registry.ToJson() << '\n';
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

}  // namespace mic::obs
