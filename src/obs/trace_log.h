// Per-thread event trace buffer (mic::obs v2): a timeline view of a run,
// complementing the aggregate counters/timers in MetricsRegistry.
//
// Every participating thread owns a fixed-capacity ring of begin/end
// events stamped with steady-clock nanoseconds since the TraceLog's
// epoch. The hot path is entirely thread-local — a thread only ever
// writes its own ring, so recording takes no lock and performs no
// cross-thread synchronization; the log's mutex guards only first-use
// registration and export-time snapshots. On ring wrap the oldest
// events are overwritten and a per-thread drop counter advances, so a
// saturated trace degrades to "most recent window + explicit drop
// count" instead of silently truncating.
//
// Feeders:
//   - obs::Span / obs::ScopedTimer emit begin/end pairs when a TraceLog
//     travels in the ExecContext (see trace.h);
//   - TraceChunks() wraps a runtime::ThreadPool::ChunkFn so every
//     ParallelFor chunk emits events on its executing worker thread,
//     nested under the span path the *caller* held when it dispatched —
//     the propagation that makes EM sharding and per-series fits show
//     up on the timeline instead of vanishing into the pool.
//
// Export is Chrome-trace JSON (chrome://tracing, https://ui.perfetto.dev):
// one "B"/"E" pair per span/chunk plus thread-name metadata, with the
// total drop count surfaced as a top-level "droppedEvents" field.
//
// Determinism: the *set* of event names and the per-name event counts
// are pure functions of the input (spans and chunk decompositions are),
// but timestamps, thread assignment, and drop counts are wall-clock and
// scheduling artifacts. Nothing in this file feeds the deterministic
// counters section of MetricsRegistry.
//
// Reading a snapshot is safe once the producing threads have quiesced
// (ParallelFor has returned / stages have joined) — the same contract
// the metrics registry documents.

#ifndef MICTREND_OBS_TRACE_LOG_H_
#define MICTREND_OBS_TRACE_LOG_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "runtime/thread_pool.h"

namespace mic::obs {

/// One begin or end mark on a thread's timeline.
struct TraceEvent {
  enum class Phase : std::uint8_t { kBegin, kEnd };

  Phase phase = Phase::kBegin;
  /// Nanoseconds since the owning TraceLog's epoch (steady clock).
  std::uint64_t ts_ns = 0;
  /// Full '/'-joined span path ("pipeline/reproduce/em_fit"). Carried
  /// on both phases so tests can pair them without a stack replay.
  std::string name;
  /// Chunk index for ParallelFor chunk events, kNoChunk otherwise.
  std::uint64_t chunk = kNoChunk;

  static constexpr std::uint64_t kNoChunk = ~std::uint64_t{0};
};

/// One force-retained event group: a slow request's span tree copied
/// out of its thread's ring before wrap could reclaim it (tail-based
/// sampling — see TraceLog::RetainSince).
struct RetainedTrace {
  /// Caller-chosen tag, normally the request id.
  std::string label;
  /// tid of the thread whose ring the events came from.
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

/// Export-time view of one thread's ring: the surviving events in
/// record order plus how many older ones the ring dropped.
struct ThreadTrace {
  /// Dense trace-local thread id (registration order; the thread that
  /// records first — normally the main thread — gets 0).
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

class TraceLog {
 public:
  /// `capacity_per_thread` bounds each thread's ring; the default keeps
  /// a full pipeline run on the paper-scale world with room to spare.
  explicit TraceLog(std::size_t capacity_per_thread = 1 << 16);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Records a begin/end mark on the calling thread's ring. Lock-free
  /// after the thread's first event (which registers the ring).
  void BeginEvent(std::string_view name,
                  std::uint64_t chunk = TraceEvent::kNoChunk);
  void EndEvent(std::string_view name,
                std::uint64_t chunk = TraceEvent::kNoChunk);

  /// Nanoseconds since this log's epoch, on the steady clock every
  /// event is stamped with.
  std::uint64_t NowNs() const;

  std::size_t capacity_per_thread() const { return capacity_; }

  /// Snapshot of every registered thread's ring, tid-ascending. Call
  /// only after the producing threads have quiesced.
  std::vector<ThreadTrace> Snapshot() const;

  /// Events currently retained across all threads (post-drop).
  std::size_t event_count() const;
  /// Total events dropped to ring wrap across all threads
  /// (the "obs.trace.dropped" count in the exported JSON). Safe to
  /// poll while producers are live — the per-thread counters are
  /// atomic — unlike Snapshot(), which needs quiescence.
  std::uint64_t dropped_count() const;

  /// Tail-based slow-request sampling. ThreadMark() returns the calling
  /// thread's current logical ring position; after the request
  /// finishes, a caller that measured it slow passes the mark back to
  /// RetainSince, which copies every event the thread recorded since
  /// (those the ring still holds) into a pinned retained set the wrap
  /// can never reclaim. Bounded to kRetainedGroupCap groups,
  /// oldest-group eviction. Both calls are cheap enough for the serve
  /// request path: ThreadMark is a thread-local read and RetainSince
  /// only runs for requests that already blew the latency threshold.
  std::uint64_t ThreadMark();
  void RetainSince(std::uint64_t mark, std::string_view label);
  /// Retained groups, oldest first.
  std::vector<RetainedTrace> RetainedSnapshot() const;
  std::size_t retained_count() const;

  static constexpr std::size_t kRetainedGroupCap = 64;

  /// Chrome-trace JSON: {"traceEvents":[...],"displayTimeUnit":"ms",
  /// "droppedEvents":N}. Events are "B"/"E" pairs (ts in microseconds,
  /// pid 1, tid = registration order) preceded by thread_name metadata;
  /// chunk events carry {"chunk":i} args. Load in chrome://tracing or
  /// ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

 private:
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    /// Ring storage; logical order is [pushed - size, pushed).
    std::vector<TraceEvent> ring;
    /// Only the owning thread writes these; they are atomic (relaxed)
    /// because dropped_count() polls them live from the server's
    /// watchdog thread. The ring itself still requires quiescence.
    std::atomic<std::uint64_t> pushed{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  ThreadBuffer* BufferForThisThread();
  void Push(TraceEvent::Phase phase, std::string_view name,
            std::uint64_t chunk);

  const std::size_t capacity_;
  const std::uint64_t log_id_;  // Key for the thread-local buffer cache.
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // Guards registration, snapshots, retained_.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::deque<RetainedTrace> retained_;
};

/// Writes ToChromeTraceJson() (plus a trailing newline) to `path`.
Status WriteTraceJsonFile(const TraceLog& trace, const std::string& path);

/// Wraps a ParallelFor chunk function so each chunk emits a begin/end
/// pair on its executing thread, named `<caller span path>/<stage>` —
/// the caller's path is captured here, on the dispatching thread, which
/// is what propagates span nesting across the pool boundary. While a
/// chunk runs, the worker's Span::CurrentPath() reports that same path,
/// so spans/timers created inside the chunk nest under it too.
/// Null `trace` returns `fn` unchanged.
runtime::ThreadPool::ChunkFn TraceChunks(TraceLog* trace,
                                         std::string_view stage,
                                         runtime::ThreadPool::ChunkFn fn);

}  // namespace mic::obs

#endif  // MICTREND_OBS_TRACE_LOG_H_
