// Prometheus/OpenMetrics text exposition for the obs registries —
// the payload behind the serve daemon's HTTP GET /metrics.
//
// Mapping (mictrend metric -> exposition families, all prefixed
// "mictrend_", dots and dashes in names replaced by underscores):
//   - Counter "a.b"      -> counter family mictrend_a_b
//                           (sample mictrend_a_b_total)
//   - Gauge "a.b"        -> gauge family mictrend_a_b
//   - Timer "a.b"        -> counter families mictrend_a_b_calls and
//                           mictrend_a_b_seconds (both monotone)
//   - Histogram "a.b"    -> histogram family mictrend_a_b with
//                           cumulative le-labeled buckets, _count, _sum
//   - WindowRegistry     -> gauge families mictrend_window_requests,
//                           _errors, _rps, _error_rate, and
//                           mictrend_window_latency_seconds
//                           (quantile-labeled), every sample labeled
//                           {channel="serve.health",window="60s"}
//
// Output is deterministic for a deterministic snapshot: families in a
// fixed section order, samples name-ascending, every family preceded
// by exactly one HELP and one TYPE line, terminated by "# EOF".
// scripts/openmetrics_lint.py holds this format to the spec in CI.

#ifndef MICTREND_OBS_OPENMETRICS_H_
#define MICTREND_OBS_OPENMETRICS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/window.h"

namespace mic::obs {

/// "serve.requests.health" -> "mictrend_serve_requests_health"; any
/// character outside [a-zA-Z0-9_:] becomes '_'.
std::string OpenMetricsName(std::string_view name);

/// Renders both registries (either may be null) as one exposition.
std::string RenderOpenMetrics(const MetricsRegistry* metrics,
                              const WindowRegistry* windows);

}  // namespace mic::obs

#endif  // MICTREND_OBS_OPENMETRICS_H_
