#include "obs/window.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace mic::obs {
namespace {

// Matches the registry exporter: %.17g round-trips doubles and stays
// valid JSON for the finite values windowed stats produce.
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);
}

std::string FormatUint(std::uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

// Upper edge of the bucket holding the rank-th observation (1-based)
// in a merged bucket-count vector; the overflow bucket reports the
// last finite edge, which understates extreme tails but keeps the
// export finite and monotone.
double QuantileEdge(const std::vector<double>& edges,
                    const std::vector<std::uint64_t>& buckets,
                    std::uint64_t count, double q) {
  if (count == 0 || edges.empty()) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(count) * q + 0.999999999));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return i < edges.size() ? edges[i] : edges.back();
    }
  }
  return edges.back();
}

}  // namespace

const std::vector<double>& DefaultLatencyEdgesSeconds() {
  static const std::vector<double> kEdges = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
  return kEdges;
}

WindowedChannel::WindowedChannel(const WindowRegistry* owner)
    : owner_(owner) {
  const WindowOptions& options = owner_->options();
  const std::vector<double>& edges = options.value_edges.empty()
                                         ? DefaultLatencyEdgesSeconds()
                                         : options.value_edges;
  slots_.reserve(options.num_slots);
  for (std::size_t i = 0; i < options.num_slots; ++i) {
    slots_.push_back(std::make_unique<Slot>(edges));
  }
}

WindowedChannel::Slot* WindowedChannel::ActiveSlot() {
  const std::uint64_t epoch =
      owner_->NowNs() / owner_->options().slot_width_ns;
  Slot* slot = slots_[epoch % slots_.size()].get();
  while (true) {
    std::uint64_t seen = slot->epoch.load(std::memory_order_acquire);
    if (seen == epoch) return slot;
    if (seen != kEmptyEpoch && seen > epoch) {
      // Another thread already turned the slot over to a later epoch
      // (its clock read was ahead of ours): recording here would land
      // in the wrong window, so drop the sample instead.
      return nullptr;
    }
    if (slot->epoch.compare_exchange_weak(seen, epoch,
                                          std::memory_order_acq_rel)) {
      // This thread won the turnover and clears the slot's previous
      // occupancy. A recorder racing between the exchange and these
      // stores can lose its sample — bounded telemetry smear, never a
      // torn value (every field is an atomic).
      slot->hist.Reset();
      slot->errors.store(0, std::memory_order_relaxed);
      slot->extra.store(0, std::memory_order_relaxed);
      return slot;
    }
  }
}

void WindowedChannel::Record(double value, bool error) {
  Slot* slot = ActiveSlot();
  if (slot == nullptr) return;
  slot->hist.Observe(value);
  if (error) slot->errors.fetch_add(1, std::memory_order_relaxed);
}

void WindowedChannel::AddCount(std::uint64_t delta) {
  if (delta == 0) return;
  Slot* slot = ActiveSlot();
  if (slot == nullptr) return;
  slot->extra.fetch_add(delta, std::memory_order_relaxed);
}

WindowStats WindowedChannel::Aggregate(std::uint64_t lookback_ns) const {
  const WindowOptions& options = owner_->options();
  const std::uint64_t width = options.slot_width_ns;
  const std::uint64_t current = owner_->NowNs() / width;
  std::uint64_t lookback_slots =
      std::max<std::uint64_t>(1, (lookback_ns + width - 1) / width);
  lookback_slots = std::min<std::uint64_t>(lookback_slots, slots_.size());

  const std::vector<double>& edges = slots_[0]->hist.edges();
  std::vector<std::uint64_t> buckets(edges.size() + 1, 0);
  WindowStats stats;
  std::uint64_t observed = 0;
  double sum = 0.0;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    const std::uint64_t epoch =
        slot->epoch.load(std::memory_order_acquire);
    if (epoch == kEmptyEpoch || epoch > current ||
        epoch + lookback_slots <= current) {
      continue;
    }
    std::uint64_t slot_observed = slot->hist.count();
    std::uint64_t slot_errors =
        slot->errors.load(std::memory_order_relaxed);
    std::uint64_t slot_extra = slot->extra.load(std::memory_order_relaxed);
    double slot_sum = slot->hist.sum();
    std::vector<std::uint64_t> slot_buckets(buckets.size(), 0);
    for (std::size_t i = 0; i < slot_buckets.size(); ++i) {
      slot_buckets[i] = slot->hist.bucket_count(i);
    }
    if (slot->epoch.load(std::memory_order_acquire) != epoch) {
      // The slot turned over while we were copying it; its contents
      // now describe a different epoch, so skip it rather than mix
      // two windows.
      continue;
    }
    observed += slot_observed;
    stats.errors += slot_errors;
    stats.count += slot_observed + slot_extra;
    sum += slot_sum;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] += slot_buckets[i];
    }
  }

  const double seconds =
      static_cast<double>(lookback_slots) * static_cast<double>(width) *
      1e-9;
  if (seconds > 0.0) stats.rps = static_cast<double>(stats.count) / seconds;
  if (stats.count > 0) {
    stats.error_rate =
        static_cast<double>(stats.errors) / static_cast<double>(stats.count);
  }
  if (observed > 0) {
    stats.mean = sum / static_cast<double>(observed);
    stats.p50 = QuantileEdge(edges, buckets, observed, 0.50);
    stats.p95 = QuantileEdge(edges, buckets, observed, 0.95);
    stats.p99 = QuantileEdge(edges, buckets, observed, 0.99);
    for (std::size_t i = buckets.size(); i-- > 0;) {
      if (buckets[i] > 0) {
        stats.max = i < edges.size() ? edges[i] : edges.back();
        break;
      }
    }
  }
  return stats;
}

WindowRegistry::WindowRegistry(WindowOptions options, ClockFn clock)
    : options_(std::move(options)),
      clock_(std::move(clock)),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.slot_width_ns == 0) {
    options_.slot_width_ns = 10ull * 1000ull * 1000ull * 1000ull;
  }
  if (options_.num_slots == 0) options_.num_slots = 60;
  if (options_.lookback_seconds.empty()) {
    options_.lookback_seconds = {60, 300, 600};
  }
}

std::uint64_t WindowRegistry::NowNs() const {
  if (clock_) return clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

WindowedChannel* WindowRegistry::channel(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_
             .emplace(std::string(name),
                      std::unique_ptr<WindowedChannel>(
                          new WindowedChannel(this)))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, const WindowedChannel*>>
WindowRegistry::Channels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const WindowedChannel*>> out;
  out.reserve(channels_.size());
  for (const auto& [name, channel] : channels_) {
    out.emplace_back(name, channel.get());
  }
  return out;
}

std::string WindowRegistry::ToJson() const {
  const std::vector<std::pair<std::string, const WindowedChannel*>>
      channels = Channels();
  std::string out = "{\"slot_width_seconds\":" +
                    FormatDouble(static_cast<double>(
                                     options_.slot_width_ns) *
                                 1e-9) +
                    ",\"slots\":" +
                    FormatUint(options_.num_slots) + ",\"windows\":{";
  bool first_window = true;
  for (const std::uint64_t lookback : options_.lookback_seconds) {
    if (!first_window) out += ',';
    first_window = false;
    out += '"' + FormatUint(lookback) + "s\":{";
    bool first_channel = true;
    for (const auto& [name, channel] : channels) {
      const WindowStats stats =
          channel->Aggregate(lookback * 1000ull * 1000ull * 1000ull);
      if (!first_channel) out += ',';
      first_channel = false;
      out += '"';
      out += name;
      out += "\":{\"count\":" + FormatUint(stats.count) +
             ",\"errors\":" + FormatUint(stats.errors) +
             ",\"rps\":" + FormatDouble(stats.rps) +
             ",\"error_rate\":" + FormatDouble(stats.error_rate) +
             ",\"mean\":" + FormatDouble(stats.mean) +
             ",\"p50\":" + FormatDouble(stats.p50) +
             ",\"p95\":" + FormatDouble(stats.p95) +
             ",\"p99\":" + FormatDouble(stats.p99) +
             ",\"max\":" + FormatDouble(stats.max) + '}';
    }
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace mic::obs
