// Pipeline-wide observability (mic::obs): a registry of named counters,
// gauges, timers, and histograms shared by every stage of the trend
// pipeline.
//
// Design rules:
//   - Hot-path updates are lock-free atomic operations on pre-resolved
//     metric handles; the registry mutex guards only name resolution,
//     which callers do once per fit/stage, not per record.
//   - A null registry costs one pointer compare: every library stage
//     takes `obs::MetricsRegistry*` (usually via mic::ExecContext) and
//     updates through the null-safe helpers below, so the disabled path
//     stays within noise of the uninstrumented build.
//   - Counter values are *deterministic*: every counter in this library
//     accumulates a quantity that is a pure function of the input
//     (EM iterations, Kalman passes, AIC evaluations, ...), and integer
//     atomic addition commutes, so exported counter values are
//     bit-identical at any thread count. Timers and gauges carry wall
//     times and are explicitly outside that contract; the exporter
//     keeps the two groups in separate JSON sections so harnesses can
//     compare the deterministic part verbatim.
//   - Export order is the lexicographic metric name, so two registries
//     that saw the same updates serialize to identical bytes.

#ifndef MICTREND_OBS_METRICS_H_
#define MICTREND_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mic::obs {

/// Monotonic event count. Lock-free; relaxed ordering is enough because
/// readers only snapshot after the producing stage has joined.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (plus Add for accumulating wall times from
/// several producers). Not part of the determinism contract.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    // CAS loop instead of fetch_add: atomic<double>::fetch_add is C++20
    // and still patchy across toolchains.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Event count plus total duration. The count is deterministic whenever
/// the traced code runs a deterministic number of times; the seconds
/// never are.
class Timer {
 public:
  void Record(std::uint64_t nanos) {
    count_.fetch_add(1, std::memory_order_relaxed);
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> nanos_{0};
};

/// Fixed-edge histogram: edges are ascending upper bounds; a value
/// lands in the first bucket with value <= edge, or the implicit
/// +infinity bucket past the last edge. Bucket counts and the total
/// count are deterministic for deterministic observations; the sum is a
/// float accumulation and therefore is not (when observed concurrently).
class Histogram {
 public:
  void Observe(double value);

  const std::vector<double>& edges() const { return edges_; }
  /// Count of bucket i, i in [0, edges().size()]; the last index is the
  /// overflow (+inf) bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  // The windowed layer (window.h) embeds histograms in its slot ring
  // and recycles them as the window slides, which needs the private
  // constructor and Reset().
  friend class WindowedChannel;
  explicit Histogram(std::vector<double> edges);

  /// Zeroes every bucket, the count, and the sum. Only the windowed
  /// layer calls this (on slot turnover); registry-owned histograms are
  /// cumulative for the process lifetime.
  void Reset();

  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe registry of named metrics. Metric objects live as long
/// as the registry and their addresses are stable, so handles resolved
/// once can be updated lock-free from any thread.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. Names are dotted lowercase
  /// identifiers ("em.iterations"); the exporter does not escape them.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Timer* timer(std::string_view name);
  /// `edges` applies on first creation only (a second caller naming the
  /// same histogram gets the existing instance regardless of edges).
  Histogram* histogram(std::string_view name, std::vector<double> edges);

  /// Value of a counter, or 0 when it was never touched (convenient for
  /// tests and report printers).
  std::uint64_t counter_value(std::string_view name) const;

  /// Full deterministic-order snapshot:
  /// {"counters":{...},"gauges":{...},"timers":{...},"histograms":{...}}
  /// Counter values are bit-identical at any thread count; gauges,
  /// timer seconds, and histogram sums are not.
  std::string ToJson() const;

  /// Only the deterministic section: {"em.iterations":12,...}. This is
  /// the string harnesses compare across thread counts.
  std::string CountersToJson() const;

  /// CSV snapshot, one `kind,name,field,value` row per scalar.
  std::string ToCsv() const;

  /// Point-in-time copies of every metric, name-ascending. These feed
  /// exposition formats that need to iterate (the OpenMetrics renderer
  /// in openmetrics.h); the registry mutex is held only while copying.
  struct TimerValue {
    std::uint64_t count = 0;
    double seconds = 0.0;
  };
  struct HistogramValue {
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets;  // edges.size() + 1 (+inf last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> SnapshotCounters()
      const;
  std::vector<std::pair<std::string, double>> SnapshotGauges() const;
  std::vector<std::pair<std::string, TimerValue>> SnapshotTimers() const;
  std::vector<std::pair<std::string, HistogramValue>> SnapshotHistograms()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

/// Writes ToJson() (plus a trailing newline) to `path`.
Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path);

/// Null-safe handle resolution: library stages hold a possibly-null
/// registry and resolve handles once per stage.
inline Counter* GetCounter(MetricsRegistry* registry,
                           std::string_view name) {
  return registry == nullptr ? nullptr : registry->counter(name);
}
inline Gauge* GetGauge(MetricsRegistry* registry, std::string_view name) {
  return registry == nullptr ? nullptr : registry->gauge(name);
}
inline Timer* GetTimer(MetricsRegistry* registry, std::string_view name) {
  return registry == nullptr ? nullptr : registry->timer(name);
}
inline Histogram* GetHistogram(MetricsRegistry* registry,
                               std::string_view name,
                               std::vector<double> edges) {
  return registry == nullptr
             ? nullptr
             : registry->histogram(name, std::move(edges));
}

/// Null-safe updates for the resolved handles.
inline void Increment(Counter* counter, std::uint64_t delta = 1) {
  if (counter != nullptr) counter->Increment(delta);
}
inline void Set(Gauge* gauge, double value) {
  if (gauge != nullptr) gauge->Set(value);
}
inline void Add(Gauge* gauge, double delta) {
  if (gauge != nullptr) gauge->Add(delta);
}
inline void Observe(Histogram* histogram, double value) {
  if (histogram != nullptr) histogram->Observe(value);
}

}  // namespace mic::obs

#endif  // MICTREND_OBS_METRICS_H_
