// Folds mic::runtime's per-stage RuntimeStats into a MetricsRegistry,
// making the thread pool one metrics producer among many instead of its
// own side channel.

#ifndef MICTREND_OBS_RUNTIME_METRICS_H_
#define MICTREND_OBS_RUNTIME_METRICS_H_

#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace mic::obs {

/// Adds one snapshot of `stats` to `registry` (null registry = no-op):
///   counters  runtime.<stage>.calls / .tasks / .items   (deterministic)
///   gauges    runtime.<stage>.wall_seconds / .busy_seconds /
///             .wait_seconds                              (wall time)
///   gauge     runtime.threads = num_threads
/// Fold once per pool per run — the counters are cumulative adds, so a
/// second fold of the same snapshot double-counts.
void FoldRuntimeStats(const runtime::RuntimeStats& stats, int num_threads,
                      MetricsRegistry* registry);

}  // namespace mic::obs

#endif  // MICTREND_OBS_RUNTIME_METRICS_H_
