#include "obs/trace_log.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"

namespace mic::obs {
namespace {

using Clock = std::chrono::steady_clock;

// Cache of this thread's buffer per TraceLog instance. Keyed by a
// process-unique log id (not the address) so an entry left behind by a
// destroyed log can never alias a new one; entries are few (one per log
// a thread has recorded into) and scanned linearly.
thread_local std::vector<std::pair<std::uint64_t, void*>> tl_buffers;

std::uint64_t NextLogId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceLog::TraceLog(std::size_t capacity_per_thread)
    : capacity_(std::max<std::size_t>(1, capacity_per_thread)),
      log_id_(NextLogId()),
      epoch_(Clock::now()) {}

std::uint64_t TraceLog::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch_)
          .count());
}

TraceLog::ThreadBuffer* TraceLog::BufferForThisThread() {
  for (const auto& [id, buffer] : tl_buffers) {
    if (id == log_id_) return static_cast<ThreadBuffer*>(buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  buffer->ring.reserve(std::min<std::size_t>(capacity_, 1024));
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tl_buffers.emplace_back(log_id_, raw);
  return raw;
}

void TraceLog::Push(TraceEvent::Phase phase, std::string_view name,
                    std::uint64_t chunk) {
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent event;
  event.phase = phase;
  event.ts_ns = NowNs();
  event.name.assign(name);
  event.chunk = chunk;
  const std::uint64_t pushed =
      buffer->pushed.load(std::memory_order_relaxed);
  if (buffer->ring.size() < capacity_) {
    buffer->ring.push_back(std::move(event));
  } else {
    // Ring wrap: overwrite the oldest surviving event and account for
    // the drop instead of silently truncating the tail.
    buffer->ring[pushed % capacity_] = std::move(event);
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
  }
  buffer->pushed.store(pushed + 1, std::memory_order_relaxed);
}

void TraceLog::BeginEvent(std::string_view name, std::uint64_t chunk) {
  Push(TraceEvent::Phase::kBegin, name, chunk);
}

void TraceLog::EndEvent(std::string_view name, std::uint64_t chunk) {
  Push(TraceEvent::Phase::kEnd, name, chunk);
}

std::uint64_t TraceLog::ThreadMark() {
  return BufferForThisThread()->pushed.load(std::memory_order_relaxed);
}

void TraceLog::RetainSince(std::uint64_t mark, std::string_view label) {
  // The ring is read lock-free: only the calling thread pushes into it,
  // so [pushed - size, pushed) is stable here. Appending to retained_
  // takes the log mutex, which is fine off the hot path (callers only
  // retain requests that already blew the latency threshold).
  ThreadBuffer* buffer = BufferForThisThread();
  const std::uint64_t pushed =
      buffer->pushed.load(std::memory_order_relaxed);
  const std::size_t size = buffer->ring.size();
  const std::uint64_t oldest = pushed - size;
  const std::uint64_t from = std::max(mark, oldest);
  if (from >= pushed) return;
  RetainedTrace group;
  group.label.assign(label);
  group.tid = buffer->tid;
  group.events.reserve(static_cast<std::size_t>(pushed - from));
  for (std::uint64_t logical = from; logical < pushed; ++logical) {
    group.events.push_back(buffer->ring[logical % size]);
  }
  std::lock_guard<std::mutex> lock(mu_);
  retained_.push_back(std::move(group));
  while (retained_.size() > kRetainedGroupCap) retained_.pop_front();
}

std::vector<RetainedTrace> TraceLog::RetainedSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RetainedTrace>(retained_.begin(), retained_.end());
}

std::size_t TraceLog::retained_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_.size();
}

std::vector<ThreadTrace> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadTrace> snapshot;
  snapshot.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    ThreadTrace trace;
    trace.tid = buffer->tid;
    trace.dropped = buffer->dropped.load(std::memory_order_relaxed);
    trace.events.reserve(buffer->ring.size());
    // Logical order is [pushed - size, pushed); after a wrap the oldest
    // surviving event sits at pushed % capacity.
    const std::size_t size = buffer->ring.size();
    const std::size_t start =
        size < capacity_
            ? 0
            : buffer->pushed.load(std::memory_order_relaxed) % capacity_;
    for (std::size_t i = 0; i < size; ++i) {
      trace.events.push_back(buffer->ring[(start + i) % size]);
    }
    snapshot.push_back(std::move(trace));
  }
  return snapshot;
}

std::size_t TraceLog::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) count += buffer->ring.size();
  return count;
}

std::uint64_t TraceLog::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    dropped += buffer->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

std::string TraceLog::ToChromeTraceJson() const {
  const std::vector<ThreadTrace> threads = Snapshot();
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& thread : threads) {
    if (!first) json += ',';
    first = false;
    json += StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
        "\"args\":{\"name\":\"thread-%u\"}}",
        thread.tid, thread.tid);
    for (const TraceEvent& event : thread.events) {
      json += ",{\"name\":\"";
      AppendJsonEscaped(json, event.name);
      json += StrFormat(
          "\",\"cat\":\"mictrend\",\"ph\":\"%c\",\"pid\":1,\"tid\":%u,"
          "\"ts\":%.3f",
          event.phase == TraceEvent::Phase::kBegin ? 'B' : 'E', thread.tid,
          static_cast<double>(event.ts_ns) * 1e-3);
      if (event.chunk != TraceEvent::kNoChunk) {
        json += StrFormat(",\"args\":{\"chunk\":%llu}",
                          static_cast<unsigned long long>(event.chunk));
      }
      json += '}';
    }
  }
  json += StrFormat(
      "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":%llu}",
      static_cast<unsigned long long>(dropped_count()));
  return json;
}

Status WriteTraceJsonFile(const TraceLog& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << trace.ToChromeTraceJson() << '\n';
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

runtime::ThreadPool::ChunkFn TraceChunks(TraceLog* trace,
                                         std::string_view stage,
                                         runtime::ThreadPool::ChunkFn fn) {
  if (trace == nullptr) return fn;
  // Capture the dispatching thread's span path NOW: chunks execute on
  // pool workers whose own span stacks are empty, and this captured
  // prefix is what nests their events under the owning stage.
  std::string path = Span::CurrentPath();
  if (path.empty()) {
    path.assign(stage);
  } else {
    path += '/';
    path += stage;
  }
  return [trace, path = std::move(path), fn = std::move(fn)](
             std::size_t chunk_begin, std::size_t chunk_end,
             std::size_t chunk_index) {
    trace->BeginEvent(path, chunk_index);
    Status status;
    {
      // Stack-only span: while the chunk runs, code inside it (nested
      // spans, traced ScopedTimers) sees `path` as its parent.
      Span chunk_scope(path);
      status = fn(chunk_begin, chunk_end, chunk_index);
    }
    trace->EndEvent(path, chunk_index);
    return status;
  };
}

}  // namespace mic::obs
