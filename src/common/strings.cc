#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace mic {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

Result<std::int64_t> ParseInt64(std::string_view text) {
  const std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty integer field");
  }
  std::string buffer(stripped);
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("cannot parse integer: '" + buffer + "'");
  }
  return static_cast<std::int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty floating-point field");
  }
  std::string buffer(stripped);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("cannot parse double: '" + buffer + "'");
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

}  // namespace mic
