// mic::ExecContext: the execution context passed explicitly through the
// pipeline's public entry points (RunPipeline, MedicationModel::Fit,
// TrendAnalyzer::AnalyzeAll, ReproduceSeries).
//
// It bundles the cross-cutting facilities a stage may use:
//   - pool:    the mic::runtime::ThreadPool parallel work dispatches to
//              (null = run inline, bit-identical output either way);
//   - metrics: the mic::obs::MetricsRegistry stage counters, timers,
//              and spans record into (null = observability disabled at
//              near-zero cost);
//   - trace:   the mic::obs::TraceLog spans and ParallelFor chunks emit
//              begin/end timeline events into (null = no tracing).
//              Tracing never touches the metrics counters, so counter
//              determinism holds with or without it.
//
// Precedence rule (tested in obs_test.cc): a pool carried by an
// explicitly passed ExecContext wins over the deprecated per-options
// pool fields (MedicationModelOptions::pool, TrendAnalyzerOptions::pool,
// PipelineOptions::pool). Those fields keep working for callers that
// have not migrated — a call without a context behaves exactly as
// before — but new code should pass an ExecContext and leave them null.
//
// Only forward declarations are needed here: the context is a pair of
// non-owning pointers, so this header stays includable from any layer
// without dragging in threads or metrics.

#ifndef MICTREND_COMMON_EXEC_CONTEXT_H_
#define MICTREND_COMMON_EXEC_CONTEXT_H_

namespace mic::runtime {
class ThreadPool;
}  // namespace mic::runtime
namespace mic::obs {
class MetricsRegistry;
class TraceLog;
}  // namespace mic::obs

namespace mic {

struct ExecContext {
  /// Execution pool (not owned; null runs parallel stages inline).
  runtime::ThreadPool* pool = nullptr;
  /// Metrics sink (not owned; null disables observability).
  obs::MetricsRegistry* metrics = nullptr;
  /// Event trace sink (not owned; null disables trace timelines).
  obs::TraceLog* trace = nullptr;
};

/// Resolves the pool a stage should use: the context's pool when one
/// was passed explicitly, otherwise the (deprecated) options-carried
/// pool.
inline runtime::ThreadPool* EffectivePool(
    const ExecContext& context, runtime::ThreadPool* options_pool) {
  return context.pool != nullptr ? context.pool : options_pool;
}

}  // namespace mic

#endif  // MICTREND_COMMON_EXEC_CONTEXT_H_
