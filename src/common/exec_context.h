// mic::ExecContext: the execution context passed explicitly through the
// pipeline's public entry points (RunPipeline, MedicationModel::Fit,
// TrendAnalyzer::AnalyzeAll, ReproduceSeries).
//
// It bundles the cross-cutting facilities a stage may use:
//   - pool:    the mic::runtime::ThreadPool parallel work dispatches to
//              (null = run inline, bit-identical output either way);
//   - metrics: the mic::obs::MetricsRegistry stage counters, timers,
//              and spans record into (null = observability disabled at
//              near-zero cost);
//   - trace:   the mic::obs::TraceLog spans and ParallelFor chunks emit
//              begin/end timeline events into (null = no tracing).
//              Tracing never touches the metrics counters, so counter
//              determinism holds with or without it.
//   - cache:   the mic::cache::CacheStore the incremental engine reads
//              fitted-model snapshots and per-series reports from and
//              writes them to (null = every stage computes cold).
//              Cache hits reproduce the cold computation bit for bit,
//              so output determinism holds with or without it.
//
// The context is the only way to hand a stage a thread pool: the
// per-options pool fields that carried one before (deprecated since the
// observability PR) are gone. A caller that still sets `options.pool`
// fails to compile; pass the pool via ExecContext instead (see the
// migration notes in docs/usage_cookbook.md).
//
// Only forward declarations are needed here: the context is a bundle of
// non-owning pointers, so this header stays includable from any layer
// without dragging in threads, metrics, or the cache implementation.

#ifndef MICTREND_COMMON_EXEC_CONTEXT_H_
#define MICTREND_COMMON_EXEC_CONTEXT_H_

namespace mic::runtime {
class ThreadPool;
}  // namespace mic::runtime
namespace mic::obs {
class MetricsRegistry;
class TraceLog;
}  // namespace mic::obs
namespace mic::cache {
class CacheStore;
}  // namespace mic::cache
namespace mic::store {
class ClaimStore;
}  // namespace mic::store

namespace mic {

struct ExecContext {
  /// Execution pool (not owned; null runs parallel stages inline).
  runtime::ThreadPool* pool = nullptr;
  /// Metrics sink (not owned; null disables observability).
  obs::MetricsRegistry* metrics = nullptr;
  /// Event trace sink (not owned; null disables trace timelines).
  obs::TraceLog* trace = nullptr;
  /// Incremental-computation store (not owned; null disables caching).
  cache::CacheStore* cache = nullptr;
  /// Persistent claim store the corpus was ingested from (not owned;
  /// null when the run parsed CSV). Purely informational for stages —
  /// ingest happens before the pipeline — but it lets reporting name
  /// the corpus source.
  store::ClaimStore* store = nullptr;
};

}  // namespace mic

#endif  // MICTREND_COMMON_EXEC_CONTEXT_H_
