#include "common/rng.h"

#include <algorithm>

namespace mic {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed word into the four xoshiro state words.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // Avoid the all-zero state (unreachable via splitmix in practice, but
  // cheap to guard).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::int64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    std::int64_t count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // simulator's large-count regimes.
  const double draw = mean + std::sqrt(mean) * NextGaussian();
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(draw + 0.5));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGamma(double shape) {
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang augmentation).
    const double u = std::max(NextDouble(), 1e-300);
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(weights[i], 0.0);
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point tail.
}

std::vector<double> Rng::NextDirichlet(double alpha, std::size_t dims) {
  std::vector<double> draws(dims, 0.0);
  double total = 0.0;
  for (auto& value : draws) {
    value = NextGamma(alpha);
    total += value;
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(dims);
    std::fill(draws.begin(), draws.end(), uniform);
    return draws;
  }
  for (auto& value : draws) value /= total;
  return draws;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace mic
