// Small string helpers shared across modules (CSV parsing, formatting).

#ifndef MICTREND_COMMON_STRINGS_H_
#define MICTREND_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mic {

/// Splits `text` on `delim`. Empty fields are preserved; an empty input
/// yields a single empty field.
std::vector<std::string> Split(std::string_view text, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Parses a base-10 integer; the whole field must be consumed.
Result<std::int64_t> ParseInt64(std::string_view text);

/// Parses a floating-point number; the whole field must be consumed.
Result<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Appends `text` to `out` with JSON string escaping (quotes,
/// backslashes, and control characters; the content goes between the
/// caller's own quote characters).
void AppendJsonEscaped(std::string& out, std::string_view text);

}  // namespace mic

#endif  // MICTREND_COMMON_STRINGS_H_
