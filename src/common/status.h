// Error model for the mictrend library.
//
// Public APIs in this library never throw: fallible operations return a
// Status (or a Result<T>, see result.h). This follows the convention of
// production database codebases (Arrow, RocksDB) where the caller must be
// able to see and handle every failure path.

#ifndef MICTREND_COMMON_STATUS_H_
#define MICTREND_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mic {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kNumericError = 8,  // non-finite values, singular matrices, divergence
  kInternal = 9,
};

/// Returns a stable human-readable name ("OK", "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// An outcome of a fallible operation: either OK or a code plus message.
///
/// Status is cheap to pass around: the OK state carries no allocation, and
/// error details live behind a single pointer.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mic

/// Propagates a non-OK Status to the caller.
#define MIC_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::mic::Status _mic_status = (expr);              \
    if (!_mic_status.ok()) return _mic_status;       \
  } while (false)

#endif  // MICTREND_COMMON_STATUS_H_
