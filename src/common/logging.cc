#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/strings.h"

namespace mic {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_log_format{static_cast<int>(LogFormat::kText)};

// Serializes sink emission so messages logged from parallel runtime
// stages never interleave mid-line. Each message is formatted into its
// LogMessage-local buffer first, so the critical section is one write.
std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

// The optional JSON-lines file sink; guarded by SinkMutex().
std::ofstream* g_log_file = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* LevelNameLower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

// Dense process-local thread id, assigned on a thread's first log
// record (0 is normally the main thread).
std::uint32_t ThisThreadLogId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* FileBaseName(const char* file) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

double WallClockSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// One record as a JSON line; `extra` is a pre-rendered fragment of
// additional key/value members ("" or ",\"key\":value,...").
std::string JsonRecord(LogLevel level, const char* file, int line,
                       std::string_view message, std::string_view extra) {
  std::string json = StrFormat(
      "{\"ts\":%.6f,\"level\":\"%s\",\"file\":\"", WallClockSeconds(),
      LevelNameLower(level));
  AppendJsonEscaped(json, FileBaseName(file));
  json += StrFormat("\",\"line\":%d,\"thread\":%u,\"message\":\"", line,
                    ThisThreadLogId());
  AppendJsonEscaped(json, message);
  json += '"';
  json += extra;
  json += '}';
  return json;
}

// Writes one already-formatted record to the enabled sinks.
void EmitRecord(LogLevel level, const char* file, int line,
                const std::string& message, std::string_view extra) {
  const bool stderr_json = GetLogFormat() == LogFormat::kJson;
  std::string json;
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (stderr_json || g_log_file != nullptr) {
    json = JsonRecord(level, file, line, message, extra);
  }
  if (stderr_json) {
    std::cerr << json << std::endl;
  } else {
    std::cerr << "[" << LevelName(level) << " " << FileBaseName(file)
              << ":" << line << "] " << message << std::endl;
  }
  if (g_log_file != nullptr) {
    *g_log_file << json << '\n';
    g_log_file->flush();
  }
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Result<LogLevel> ParseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  return Status::InvalidArgument(
      "unknown log level '" + std::string(name) +
      "' (expected debug, info, warning, or error)");
}

void ApplyLogLevelFromEnv() {
  const char* value = std::getenv("MICTREND_LOG_LEVEL");
  if (value == nullptr) return;
  auto level = ParseLogLevel(value);
  if (level.ok()) SetLogLevel(*level);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(
      g_log_format.load(std::memory_order_relaxed));
}

void SetLogFormat(LogFormat format) {
  g_log_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

Status OpenLogFile(const std::string& path) {
  auto file = new std::ofstream(path, std::ios::trunc);
  if (!*file) {
    delete file;
    return Status::IoError("cannot open log file '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(SinkMutex());
  delete g_log_file;
  g_log_file = file;
  return Status::OK();
}

void CloseLogFile() {
  std::lock_guard<std::mutex> lock(SinkMutex());
  delete g_log_file;
  g_log_file = nullptr;
}

void LogRunMetadata(const RunMetadata& run) {
  if (LogLevel::kInfo < GetLogLevel()) return;
  std::string extra = ",\"event\":\"run_start\",\"command\":\"";
  AppendJsonEscaped(extra, run.command);
  extra += StrFormat(
      "\",\"seed\":%llu,\"threads\":%d,"
      "\"build\":{\"compiler\":\"",
      static_cast<unsigned long long>(run.seed), run.threads);
#if defined(__VERSION__)
  AppendJsonEscaped(extra, __VERSION__);
#endif
  extra += StrFormat("\",\"std\":%ld,\"mode\":\"",
                     static_cast<long>(__cplusplus));
#if defined(NDEBUG)
  extra += "release";
#else
  extra += "debug";
#endif
  extra += "\"}";
  EmitRecord(LogLevel::kInfo, __FILE__, __LINE__,
             "run started: " + run.command, extra);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      file_(file),
      line_(line),
      fatal_(fatal),
      enabled_(fatal || level >= GetLogLevel()) {}

LogMessage::~LogMessage() {
  if (enabled_) {
    EmitRecord(level_, file_, line_, stream_.str(), "");
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace mic
