#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace mic {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes sink emission so messages logged from parallel runtime
// stages never interleave mid-line. Each message is formatted into its
// LogMessage-local buffer first, so the critical section is one write.
std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= GetLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace mic
