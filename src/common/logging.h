// Minimal leveled logging plus CHECK macros for invariant enforcement.
//
// CHECK failures abort: they indicate programmer error, never data error
// (data errors travel through Status/Result).

#ifndef MICTREND_COMMON_LOGGING_H_
#define MICTREND_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mic {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mic

#define MIC_LOG(level)                                                  \
  ::mic::internal::LogMessage(::mic::LogLevel::k##level, __FILE__,      \
                              __LINE__)                                 \
      .stream()

#define MIC_CHECK(condition)                                            \
  if (!(condition))                                                     \
  ::mic::internal::LogMessage(::mic::LogLevel::kError, __FILE__,        \
                              __LINE__, /*fatal=*/true)                 \
          .stream()                                                     \
      << "Check failed: " #condition " "

#define MIC_CHECK_OP(lhs, rhs, op) MIC_CHECK((lhs)op(rhs))
#define MIC_CHECK_EQ(lhs, rhs) MIC_CHECK_OP(lhs, rhs, ==)
#define MIC_CHECK_NE(lhs, rhs) MIC_CHECK_OP(lhs, rhs, !=)
#define MIC_CHECK_LT(lhs, rhs) MIC_CHECK_OP(lhs, rhs, <)
#define MIC_CHECK_LE(lhs, rhs) MIC_CHECK_OP(lhs, rhs, <=)
#define MIC_CHECK_GT(lhs, rhs) MIC_CHECK_OP(lhs, rhs, >)
#define MIC_CHECK_GE(lhs, rhs) MIC_CHECK_OP(lhs, rhs, >=)

#define MIC_CHECK_OK(expr)                   \
  do {                                       \
    ::mic::Status _mic_s = (expr);           \
    MIC_CHECK(_mic_s.ok()) << _mic_s;        \
  } while (false)

#endif  // MICTREND_COMMON_LOGGING_H_
