// Leveled logging with pluggable sink formats, plus CHECK macros for
// invariant enforcement.
//
// Messages below the global threshold are discarded before any
// formatting work. The stderr sink renders either the classic human
// one-liner (`[INFO file.cc:12] message`) or structured JSON lines; an
// optional file sink always receives JSON lines, one object per record:
//
//   {"ts":1754500000.123456,"level":"info","file":"pipeline.cc",
//    "line":15,"thread":0,"message":"..."}
//
// `thread` is a dense process-local id in first-log order (0 is
// normally the main thread), matching the tid scheme of the obs trace
// layer. LogRunMetadata() stamps a run's identity (command, seed,
// thread count, build info) as the first structured record so a
// `*.jsonl` run log is self-describing.
//
// CHECK failures abort: they indicate programmer error, never data error
// (data errors travel through Status/Result).

#ifndef MICTREND_COMMON_LOGGING_H_
#define MICTREND_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "common/result.h"

namespace mic {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug" / "info" / "warning" / "error" (case-sensitive,
/// lowercase); anything else is an InvalidArgument naming the input.
Result<LogLevel> ParseLogLevel(std::string_view name);

/// Applies the MICTREND_LOG_LEVEL environment variable, when set to a
/// parseable level name. Call once at process start (the CLI does).
void ApplyLogLevelFromEnv();

/// Stderr sink rendering: classic human text (default) or JSON lines.
enum class LogFormat { kText, kJson };
LogFormat GetLogFormat();
void SetLogFormat(LogFormat format);

/// Opens `path` as a JSON-lines log sink alongside stderr (truncates an
/// existing file); IoError when the file cannot be opened. The sink
/// stays open until CloseLogFile() or process exit.
Status OpenLogFile(const std::string& path);
void CloseLogFile();

/// Identity of one run, logged as the first structured record.
struct RunMetadata {
  std::string command;      // e.g. "pipeline"
  std::uint64_t seed = 0;   // world/generator seed, 0 = not applicable
  int threads = 0;          // pool width (workers + caller)
};

/// Emits an Info record with `run` plus compile-time build info
/// (compiler, C++ standard, build mode) as structured fields.
void LogRunMetadata(const RunMetadata& run);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mic

#define MIC_LOG(level)                                                  \
  ::mic::internal::LogMessage(::mic::LogLevel::k##level, __FILE__,      \
                              __LINE__)                                 \
      .stream()

#define MIC_CHECK(condition)                                            \
  if (!(condition))                                                     \
  ::mic::internal::LogMessage(::mic::LogLevel::kError, __FILE__,        \
                              __LINE__, /*fatal=*/true)                 \
          .stream()                                                     \
      << "Check failed: " #condition " "

#define MIC_CHECK_OP(lhs, rhs, op) MIC_CHECK((lhs)op(rhs))
#define MIC_CHECK_EQ(lhs, rhs) MIC_CHECK_OP(lhs, rhs, ==)
#define MIC_CHECK_NE(lhs, rhs) MIC_CHECK_OP(lhs, rhs, !=)
#define MIC_CHECK_LT(lhs, rhs) MIC_CHECK_OP(lhs, rhs, <)
#define MIC_CHECK_LE(lhs, rhs) MIC_CHECK_OP(lhs, rhs, <=)
#define MIC_CHECK_GT(lhs, rhs) MIC_CHECK_OP(lhs, rhs, >)
#define MIC_CHECK_GE(lhs, rhs) MIC_CHECK_OP(lhs, rhs, >=)

#define MIC_CHECK_OK(expr)                   \
  do {                                       \
    ::mic::Status _mic_s = (expr);           \
    MIC_CHECK(_mic_s.ok()) << _mic_s;        \
  } while (false)

#endif  // MICTREND_COMMON_LOGGING_H_
