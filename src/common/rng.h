// Deterministic random number generation for simulations and sampling.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a single seed. The engine is xoshiro256**, a small,
// fast, high-quality generator (Blackman & Vigna).

#ifndef MICTREND_COMMON_RNG_H_
#define MICTREND_COMMON_RNG_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mic {

/// Seedable pseudo-random generator with the sampling helpers the
/// simulator and models need. Copyable: a copy replays the same stream.
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box–Muller with caching).
  double NextGaussian();

  /// Normal draw with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Poisson draw; exact inversion for small means, PTRS-style normal
  /// approximation with rounding for large means.
  std::int64_t NextPoisson(double mean);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Gamma(shape, scale=1) draw (Marsaglia–Tsang).
  double NextGamma(double shape);

  /// Samples an index from unnormalized non-negative weights.
  /// Returns weights.size() when all weights are zero or empty.
  std::size_t NextCategorical(const std::vector<double>& weights);

  /// Samples a probability vector from a symmetric Dirichlet(alpha).
  std::vector<double> NextDirichlet(double alpha, std::size_t dims);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent generator (seeded from this stream). Used to
  /// give each month / city / worker its own stream without correlation.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mic

#endif  // MICTREND_COMMON_RNG_H_
