// Result<T>: value-or-Status, the return type of fallible functions that
// produce a value. See status.h for the library's error-handling policy.

#ifndef MICTREND_COMMON_RESULT_H_
#define MICTREND_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mic {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Typical use:
///
///   Result<Model> result = Model::Fit(data);
///   if (!result.ok()) return result.status();
///   Model model = std::move(result).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit so functions can
  /// `return value;`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit so functions can
  /// `return Status::...;`). Aborts if `status` is OK: an OK Result must
  /// carry a value.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The held value. Aborts if this Result holds an error; call ok() first.
  const T& value() const& {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: "
                << std::get<Status>(rep_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

}  // namespace mic

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error to the caller.
#define MIC_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  MIC_ASSIGN_OR_RETURN_IMPL_(                                 \
      MIC_RESULT_CONCAT_(_mic_result, __COUNTER__), lhs, rexpr)

#define MIC_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define MIC_RESULT_CONCAT_INNER_(a, b) a##b
#define MIC_RESULT_CONCAT_(a, b) MIC_RESULT_CONCAT_INNER_(a, b)

#endif  // MICTREND_COMMON_RESULT_H_
