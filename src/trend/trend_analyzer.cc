#include "trend/trend_analyzer.h"

#include <cmath>
#include <cstdlib>

#include "ssm/decompose.h"
#include "stats/metrics.h"

namespace mic::trend {

std::string_view ChangeCauseName(ChangeCause cause) {
  switch (cause) {
    case ChangeCause::kNone:
      return "none";
    case ChangeCause::kDiseaseDerived:
      return "disease-derived";
    case ChangeCause::kMedicineDerived:
      return "medicine-derived";
    case ChangeCause::kPrescriptionDerived:
      return "prescription-derived";
  }
  return "?";
}

std::size_t TrendReport::CountChanges(SeriesKind kind) const {
  const std::vector<SeriesAnalysis>* source = nullptr;
  switch (kind) {
    case SeriesKind::kDisease:
      source = &diseases;
      break;
    case SeriesKind::kMedicine:
      source = &medicines;
      break;
    case SeriesKind::kPrescription:
      source = &prescriptions;
      break;
  }
  std::size_t count = 0;
  for (const SeriesAnalysis& analysis : *source) {
    if (analysis.has_change) ++count;
  }
  return count;
}

Result<SeriesAnalysis> TrendAnalyzer::AnalyzeSeries(
    SeriesKind kind, DiseaseId d, MedicineId m,
    const std::vector<double>& series) const {
  SeriesAnalysis analysis;
  analysis.kind = kind;
  analysis.disease = d;
  analysis.medicine = m;

  std::vector<double> working = series;
  if (options_.normalize) {
    const double sd = stats::StdDev(series);
    if (sd > 0.0) {
      analysis.scale = sd;
      for (double& value : working) value /= sd;
    }
  }

  ssm::ChangePointDetector detector(std::move(working), options_.detector);
  Result<ssm::ChangePointResult> detected =
      options_.use_approximate ? detector.DetectApproximate()
                               : detector.DetectExact();
  MIC_RETURN_IF_ERROR(detected.status());

  analysis.has_change = detected->has_change;
  analysis.change_point = detected->change_point;
  analysis.aic = detected->best_aic;
  analysis.aic_without_intervention = detected->aic_without_intervention;
  analysis.fits_performed = detected->fits_performed;

  if (detected->has_change) {
    // The smoothed intervention coefficient, rescaled to original units.
    std::vector<double> normalized = series;
    for (double& value : normalized) value /= analysis.scale;
    auto decomposition = ssm::Decompose(detected->best_model, normalized);
    if (decomposition.ok()) {
      analysis.lambda = decomposition->lambda * analysis.scale;
    }
  }
  return analysis;
}

Result<TrendReport> TrendAnalyzer::AnalyzeAll(
    const medmodel::SeriesSet& set) const {
  TrendReport report;

  Status first_error = Status::OK();
  set.ForEachDisease([&](DiseaseId d, const std::vector<double>& series) {
    auto analysis =
        AnalyzeSeries(SeriesKind::kDisease, d, MedicineId(), series);
    if (analysis.ok()) {
      report.disease_index.emplace(d, report.diseases.size());
      report.diseases.push_back(*analysis);
    } else if (first_error.ok() &&
               analysis.status().code() != StatusCode::kInvalidArgument) {
      first_error = analysis.status();
    }
  });
  set.ForEachMedicine([&](MedicineId m, const std::vector<double>& series) {
    auto analysis =
        AnalyzeSeries(SeriesKind::kMedicine, DiseaseId(), m, series);
    if (analysis.ok()) {
      report.medicine_index.emplace(m, report.medicines.size());
      report.medicines.push_back(*analysis);
    } else if (first_error.ok() &&
               analysis.status().code() != StatusCode::kInvalidArgument) {
      first_error = analysis.status();
    }
  });
  set.ForEachPair([&](DiseaseId d, MedicineId m,
                      const std::vector<double>& series) {
    auto analysis = AnalyzeSeries(SeriesKind::kPrescription, d, m, series);
    if (analysis.ok()) {
      report.prescriptions.push_back(*analysis);
    } else if (first_error.ok() &&
               analysis.status().code() != StatusCode::kInvalidArgument) {
      first_error = analysis.status();
    }
  });
  MIC_RETURN_IF_ERROR(first_error);
  return report;
}

ChangeCause TrendAnalyzer::ClassifyPrescriptionChange(
    const TrendReport& report, const SeriesAnalysis& prescription) const {
  if (!prescription.has_change) return ChangeCause::kNone;

  auto near = [this, &prescription](const SeriesAnalysis& other) {
    return other.has_change &&
           std::abs(other.change_point - prescription.change_point) <=
               options_.cause_window;
  };

  auto disease_it = report.disease_index.find(prescription.disease);
  if (disease_it != report.disease_index.end() &&
      near(report.diseases[disease_it->second])) {
    return ChangeCause::kDiseaseDerived;
  }
  auto medicine_it = report.medicine_index.find(prescription.medicine);
  if (medicine_it != report.medicine_index.end() &&
      near(report.medicines[medicine_it->second])) {
    return ChangeCause::kMedicineDerived;
  }
  return ChangeCause::kPrescriptionDerived;
}

}  // namespace mic::trend
