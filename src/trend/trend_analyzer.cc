#include "trend/trend_analyzer.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>

#include "cache/cache_store.h"
#include "cache/fingerprint.h"
#include "cache/snapshot_io.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "obs/trace_log.h"
#include "runtime/thread_pool.h"
#include "ssm/decompose.h"
#include "stats/metrics.h"

namespace mic::trend {

std::string_view ChangeCauseName(ChangeCause cause) {
  switch (cause) {
    case ChangeCause::kNone:
      return "none";
    case ChangeCause::kDiseaseDerived:
      return "disease-derived";
    case ChangeCause::kMedicineDerived:
      return "medicine-derived";
    case ChangeCause::kPrescriptionDerived:
      return "prescription-derived";
  }
  return "?";
}

std::size_t TrendReport::CountChanges(SeriesKind kind) const {
  const std::vector<SeriesAnalysis>* source = nullptr;
  switch (kind) {
    case SeriesKind::kDisease:
      source = &diseases;
      break;
    case SeriesKind::kMedicine:
      source = &medicines;
      break;
    case SeriesKind::kPrescription:
      source = &prescriptions;
      break;
  }
  std::size_t count = 0;
  for (const SeriesAnalysis& analysis : *source) {
    if (analysis.has_change) ++count;
  }
  return count;
}

Result<SeriesAnalysis> TrendAnalyzer::AnalyzeSeries(
    const ExecContext& context, SeriesKind kind, DiseaseId d, MedicineId m,
    std::span<const double> series) const {
  SeriesAnalysis analysis;
  analysis.kind = kind;
  analysis.disease = d;
  analysis.medicine = m;

  // The single working copy on this hot path; the detector takes
  // ownership and keeps serving it via series().
  std::vector<double> working(series.begin(), series.end());
  if (options_.normalize) {
    const double sd = stats::StdDev(working);
    if (sd > 0.0) {
      analysis.scale = sd;
      for (double& value : working) value /= sd;
    }
  }

  ssm::ChangePointOptions detector_options = options_.detector;
  if (context.metrics != nullptr) {
    detector_options.fit.metrics = context.metrics;
  }
  ssm::ChangePointDetector detector(std::move(working), detector_options);
  Result<ssm::ChangePointResult> detected =
      options_.use_approximate ? detector.DetectApproximate()
                               : detector.DetectExact();
  MIC_RETURN_IF_ERROR(detected.status());

  analysis.has_change = detected->has_change;
  analysis.change_point = detected->change_point;
  analysis.aic = detected->best_aic;
  analysis.aic_without_intervention = detected->aic_without_intervention;
  analysis.fits_performed = detected->fits_performed;

  if (detected->has_change) {
    // The smoothed intervention coefficient, rescaled to original
    // units; detector.series() is exactly the normalized series.
    auto decomposition =
        ssm::Decompose(detected->best_model, detector.series());
    if (decomposition.ok()) {
      analysis.lambda = decomposition->lambda * analysis.scale;
    }
  }
  return analysis;
}

namespace {

// One per-series fit dispatched to the pool. The series is referenced,
// not copied: the SeriesSet outlives the dispatch.
struct SeriesTask {
  SeriesKind kind;
  DiseaseId disease;
  MedicineId medicine;
  const std::vector<double>* series;
};

// Version salt for cached SeriesAnalysis entries: bump whenever the
// analysis algorithm changes in a way that leaves stale cached verdicts
// structurally valid (v2 = candidate-level wavefront sweep).
constexpr std::uint64_t kSeriesAnalysisVersion = 2;

}  // namespace

// Every option that can change a single-series verdict takes part in
// the cache key; editing any of them re-keys the whole sweep.
std::uint64_t FingerprintAnalyzerOptions(
    const TrendAnalyzerOptions& options) {
  cache::Hasher hasher;
  hasher.Mix(kSeriesAnalysisVersion);
  const ssm::ChangePointOptions& detector = options.detector;
  hasher.Mix(detector.seasonal ? 1 : 0);
  hasher.MixSigned(detector.period);
  hasher.MixSigned(detector.fit.restarts);
  hasher.MixSigned(detector.fit.optimizer.max_evaluations);
  hasher.MixDouble(detector.fit.optimizer.tolerance);
  hasher.MixDouble(detector.fit.optimizer.initial_step);
  hasher.MixSigned(detector.min_candidate);
  hasher.MixSigned(detector.min_tail_observations);
  hasher.MixDouble(detector.aic_margin);
  hasher.Mix(detector.candidate_kinds.size());
  for (ssm::InterventionKind kind : detector.candidate_kinds) {
    hasher.MixSigned(static_cast<std::int64_t>(kind));
  }
  hasher.MixSigned(static_cast<std::int64_t>(detector.criterion));
  hasher.Mix(options.use_approximate ? 1 : 0);
  hasher.Mix(options.normalize ? 1 : 0);
  return hasher.digest();
}

namespace {

std::uint64_t FingerprintSeriesTask(std::uint64_t options_key,
                                    const SeriesTask& task) {
  cache::Hasher hasher;
  hasher.Mix(options_key);
  hasher.MixSigned(static_cast<std::int64_t>(task.kind));
  hasher.Mix(task.disease.value());
  hasher.Mix(task.medicine.value());
  hasher.Mix(cache::FingerprintSeries(*task.series));
  return hasher.digest();
}

}  // namespace

std::vector<std::uint8_t> SerializeAnalysis(const SeriesAnalysis& analysis) {
  cache::SnapshotWriter writer;
  writer.PutI64(static_cast<std::int64_t>(analysis.kind));
  writer.PutU32(analysis.disease.value());
  writer.PutU32(analysis.medicine.value());
  writer.PutU32(analysis.has_change ? 1 : 0);
  writer.PutI64(analysis.change_point);
  writer.PutDouble(analysis.lambda);
  writer.PutDouble(analysis.aic);
  writer.PutDouble(analysis.aic_without_intervention);
  writer.PutDouble(analysis.scale);
  writer.PutI64(analysis.fits_performed);
  return writer.Take();
}

Result<SeriesAnalysis> DeserializeAnalysis(
    const std::vector<std::uint8_t>& payload) {
  cache::SnapshotReader reader(payload);
  SeriesAnalysis analysis;
  MIC_ASSIGN_OR_RETURN(const std::int64_t kind, reader.I64());
  if (kind < 0 || kind > 2) {
    return Status::FailedPrecondition("series-analysis kind out of range");
  }
  analysis.kind = static_cast<SeriesKind>(kind);
  MIC_ASSIGN_OR_RETURN(const std::uint32_t disease, reader.U32());
  analysis.disease = DiseaseId(disease);
  MIC_ASSIGN_OR_RETURN(const std::uint32_t medicine, reader.U32());
  analysis.medicine = MedicineId(medicine);
  MIC_ASSIGN_OR_RETURN(const std::uint32_t has_change, reader.U32());
  analysis.has_change = has_change != 0;
  MIC_ASSIGN_OR_RETURN(const std::int64_t change_point, reader.I64());
  analysis.change_point = static_cast<int>(change_point);
  MIC_ASSIGN_OR_RETURN(analysis.lambda, reader.Double());
  MIC_ASSIGN_OR_RETURN(analysis.aic, reader.Double());
  MIC_ASSIGN_OR_RETURN(analysis.aic_without_intervention, reader.Double());
  MIC_ASSIGN_OR_RETURN(analysis.scale, reader.Double());
  MIC_ASSIGN_OR_RETURN(const std::int64_t fits, reader.I64());
  analysis.fits_performed = static_cast<int>(fits);
  if (!reader.AtEnd()) {
    return Status::FailedPrecondition(
        "trailing bytes after series-analysis snapshot");
  }
  return analysis;
}

namespace {

// One in-flight per-series search in the candidate-level wavefront.
// The detector owns the normalized working copy; `options` is the exact
// option set the detector was constructed with, so a worker-side
// EvaluateCandidate call fits precisely the models the detector planned
// for. `analysis` carries the AnalyzeSeries preamble results (ids,
// normalization scale) until FinishSearch fills in the verdict.
struct SweepSlot {
  SweepSlot(std::size_t task_index_in, const SeriesAnalysis& analysis_in,
            std::vector<double> working,
            const ssm::ChangePointOptions& detector_options)
      : task_index(task_index_in),
        analysis(analysis_in),
        options(detector_options),
        detector(std::move(working), detector_options) {}

  std::size_t task_index;
  SeriesAnalysis analysis;
  ssm::ChangePointOptions options;
  ssm::ChangePointDetector detector;
};

}  // namespace

Result<TrendReport> TrendAnalyzer::AnalyzeAll(
    const ExecContext& context, const medmodel::SeriesSet& set) const {
  obs::MetricsRegistry* metrics = context.metrics;
  obs::Span detect_span(context, "detect");

  // Collect every series in the serial traversal order; that order also
  // assembles the report below, so the result does not depend on which
  // thread fits which series.
  std::vector<SeriesTask> tasks;
  tasks.reserve(set.num_diseases() + set.num_medicines() +
                set.num_pairs());
  set.ForEachDisease([&tasks](DiseaseId d,
                              const std::vector<double>& series) {
    tasks.push_back({SeriesKind::kDisease, d, MedicineId(), &series});
  });
  set.ForEachMedicine([&tasks](MedicineId m,
                               const std::vector<double>& series) {
    tasks.push_back({SeriesKind::kMedicine, DiseaseId(), m, &series});
  });
  set.ForEachPair([&tasks](DiseaseId d, MedicineId m,
                           const std::vector<double>& series) {
    tasks.push_back({SeriesKind::kPrescription, d, m, &series});
  });

  // Dirty-set sweep: answer unchanged series from the cache before the
  // dispatch. The serial prepass keeps hit/miss accounting in traversal
  // order, so the counters are identical at any thread count.
  std::vector<SeriesAnalysis> analyses(tasks.size());
  std::vector<Status> statuses(tasks.size());
  cache::CacheStore* store = context.cache;
  const bool cache_active =
      store != nullptr && (store->can_read() || store->can_write());
  std::vector<std::uint64_t> keys;
  std::vector<char> from_cache(tasks.size(), 0);
  if (cache_active) {
    const std::uint64_t options_key = FingerprintAnalyzerOptions(options_);
    keys.resize(tasks.size());
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      keys[i] = FingerprintSeriesTask(options_key, tasks[i]);
      if (!store->can_read()) continue;
      auto payload = store->Get("series", keys[i]);
      if (!payload.ok()) continue;  // Miss or corrupt: recompute cold.
      auto cached = DeserializeAnalysis(*payload);
      if (!cached.ok() || cached->kind != tasks[i].kind ||
          cached->disease != tasks[i].disease ||
          cached->medicine != tasks[i].medicine) {
        continue;  // Malformed or collided entry: recompute cold.
      }
      analyses[i] = std::move(*cached);
      from_cache[i] = 1;
      ++hits;
    }
    if (metrics != nullptr) {
      obs::Increment(obs::GetCounter(metrics, "trend.series_cache_hits"),
                     hits);
      obs::Increment(
          obs::GetCounter(metrics, "trend.series_cache_misses"),
          static_cast<std::uint64_t>(tasks.size()) - hits);
    }
  }

  // Batch the uncached series through the candidate-level wavefront
  // (SweepSeries below). Items are assembled in task order and folded
  // back in the same order, so the report and every counter stay
  // bit-identical to the serial path at any thread count.
  std::vector<SweepItem> sweep;
  std::vector<std::size_t> sweep_to_task;
  sweep.reserve(tasks.size());
  sweep_to_task.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (from_cache[i]) continue;
    const SeriesTask& task = tasks[i];
    SweepItem item;
    item.series = task.series;
    item.analysis.kind = task.kind;
    item.analysis.disease = task.disease;
    item.analysis.medicine = task.medicine;
    sweep.push_back(std::move(item));
    sweep_to_task.push_back(i);
  }
  MIC_RETURN_IF_ERROR(SweepSeries(context, sweep));
  for (std::size_t j = 0; j < sweep.size(); ++j) {
    const std::size_t i = sweep_to_task[j];
    if (!sweep[j].status.ok()) {
      statuses[i] = sweep[j].status;
      continue;
    }
    analyses[i] = std::move(sweep[j].analysis);
  }

  // Publish the fresh analyses; write failures degrade to "no cache".
  if (cache_active && store->can_write()) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (from_cache[i] || !statuses[i].ok()) continue;
      Status put = store->Put("series", keys[i],
                              SerializeAnalysis(analyses[i]));
      if (!put.ok()) {
        MIC_LOG(Warning) << "cache write failed: " << put.ToString();
      }
    }
  }

  // Assemble in task order; keep the serial error policy (the first
  // non-InvalidArgument failure wins, degenerate series are skipped).
  TrendReport report;
  Status first_error = Status::OK();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!statuses[i].ok()) {
      if (first_error.ok() &&
          statuses[i].code() != StatusCode::kInvalidArgument) {
        first_error = statuses[i];
      }
      continue;
    }
    const SeriesTask& task = tasks[i];
    switch (task.kind) {
      case SeriesKind::kDisease:
        report.disease_index.emplace(task.disease, report.diseases.size());
        report.diseases.push_back(std::move(analyses[i]));
        break;
      case SeriesKind::kMedicine:
        report.medicine_index.emplace(task.medicine,
                                      report.medicines.size());
        report.medicines.push_back(std::move(analyses[i]));
        break;
      case SeriesKind::kPrescription:
        report.prescriptions.push_back(std::move(analyses[i]));
        break;
    }
  }
  MIC_RETURN_IF_ERROR(first_error);

  if (metrics != nullptr) {
    obs::Increment(obs::GetCounter(metrics, "trend.series_analyzed"),
                   tasks.size());
    std::uint64_t fits = 0;
    std::uint64_t changes = 0;
    for (const auto* group :
         {&report.diseases, &report.medicines, &report.prescriptions}) {
      for (const SeriesAnalysis& analysis : *group) {
        fits += static_cast<std::uint64_t>(analysis.fits_performed);
        if (analysis.has_change) ++changes;
      }
    }
    obs::Increment(obs::GetCounter(metrics, "trend.series_fits"), fits);
    obs::Increment(obs::GetCounter(metrics, "trend.changes_detected"),
                   changes);
    std::uint64_t cause_counts[4] = {0, 0, 0, 0};
    for (const SeriesAnalysis& prescription : report.prescriptions) {
      const ChangeCause cause =
          ClassifyPrescriptionChange(report, prescription);
      ++cause_counts[static_cast<int>(cause)];
    }
    obs::Increment(obs::GetCounter(metrics, "trend.cause.disease_derived"),
                   cause_counts[static_cast<int>(
                       ChangeCause::kDiseaseDerived)]);
    obs::Increment(obs::GetCounter(metrics, "trend.cause.medicine_derived"),
                   cause_counts[static_cast<int>(
                       ChangeCause::kMedicineDerived)]);
    obs::Increment(
        obs::GetCounter(metrics, "trend.cause.prescription_derived"),
        cause_counts[static_cast<int>(ChangeCause::kPrescriptionDerived)]);
  }
  return report;
}

Status TrendAnalyzer::SweepSeries(const ExecContext& context,
                                  std::span<SweepItem> items) const {
  runtime::ThreadPool* pool = context.pool;
  obs::MetricsRegistry* metrics = context.metrics;
  // Per-series fit wall time. Workers record into this pre-resolved
  // handle directly (they do not inherit the span stack).
  obs::Timer* fit_timer = obs::GetTimer(metrics, "trend.series_fit");

  // Candidate-level wavefront. One slot per item replicates the
  // AnalyzeSeries preamble (normalization, metrics wiring) in item
  // order and starts the resumable search; each round then gathers the
  // pending candidate fits of ALL open searches into one batch for the
  // pool. The pool therefore sees series x candidates-per-round
  // independent fits instead of one opaque task per series — the serial
  // per-series AIC sweep no longer starves it. All detector-side
  // bookkeeping (counters, memo publication, fit accounting) happens in
  // the serial fold-back below, in item order, so every verdict and
  // counter is bit-identical to the serial path at any thread count.
  std::vector<std::unique_ptr<SweepSlot>> slots;
  slots.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    SweepItem& item = items[i];
    std::vector<double> working(item.series->begin(), item.series->end());
    if (options_.normalize) {
      const double sd = stats::StdDev(working);
      if (sd > 0.0) {
        item.analysis.scale = sd;
        for (double& value : working) value /= sd;
      }
    }
    ssm::ChangePointOptions detector_options = options_.detector;
    if (metrics != nullptr) {
      detector_options.fit.metrics = metrics;
    }
    slots.push_back(std::make_unique<SweepSlot>(i, item.analysis,
                                                std::move(working),
                                                detector_options));
    slots.back()->detector.BeginSearch(options_.use_approximate);
  }

  // A candidate fit dispatched to the pool this round.
  struct CandidateRef {
    SweepSlot* slot;
    int t_cp;
  };
  while (true) {
    std::vector<CandidateRef> batch;
    for (const auto& slot : slots) {
      if (slot->detector.SearchDone()) continue;
      for (int t_cp : slot->detector.PendingCandidates()) {
        batch.push_back({slot.get(), t_cp});
      }
    }
    if (batch.empty()) break;
    // Result<CandidateEvaluation> has no default constructor; stage the
    // worker results through optionals.
    std::vector<std::optional<Result<ssm::CandidateEvaluation>>> evals(
        batch.size());
    MIC_RETURN_IF_ERROR(runtime::ParallelFor(
        pool, 0, batch.size(), 1,
        obs::TraceChunks(
            context.trace, "trend-sweep",
            [&batch, &evals, &context, fit_timer](
                std::size_t chunk_begin, std::size_t chunk_end,
                std::size_t) {
              for (std::size_t j = chunk_begin; j < chunk_end; ++j) {
                const CandidateRef& ref = batch[j];
                obs::ScopedTimer fit_scope(fit_timer, context.trace,
                                           "series_fit");
                evals[j].emplace(ssm::EvaluateCandidate(
                    ref.slot->detector.series(), ref.slot->options,
                    ref.t_cp));
              }
              return Status::OK();
            }),
        "trend-sweep"));
    // Serial fold-back in batch (= item) order.
    for (std::size_t j = 0; j < batch.size(); ++j) {
      batch[j].slot->detector.SupplyEvaluation(batch[j].t_cp,
                                               std::move(*evals[j]));
    }
  }

  // Close out each search with the AnalyzeSeries tail.
  for (auto& slot : slots) {
    SweepItem& item = items[slot->task_index];
    Result<ssm::ChangePointResult> detected = slot->detector.FinishSearch();
    if (!detected.ok()) {
      item.status = detected.status();
      continue;
    }
    SeriesAnalysis analysis = std::move(slot->analysis);
    analysis.has_change = detected->has_change;
    analysis.change_point = detected->change_point;
    analysis.aic = detected->best_aic;
    analysis.aic_without_intervention = detected->aic_without_intervention;
    analysis.fits_performed = detected->fits_performed;
    if (detected->has_change) {
      auto decomposition =
          ssm::Decompose(detected->best_model, slot->detector.series());
      if (decomposition.ok()) {
        analysis.lambda = decomposition->lambda * analysis.scale;
      }
    }
    item.analysis = std::move(analysis);
  }
  return Status::OK();
}

ChangeCause TrendAnalyzer::ClassifyPrescriptionChange(
    const TrendReport& report, const SeriesAnalysis& prescription) const {
  if (!prescription.has_change) return ChangeCause::kNone;

  auto near = [this, &prescription](const SeriesAnalysis& other) {
    return other.has_change &&
           std::abs(other.change_point - prescription.change_point) <=
               options_.cause_window;
  };

  auto disease_it = report.disease_index.find(prescription.disease);
  if (disease_it != report.disease_index.end() &&
      near(report.diseases[disease_it->second])) {
    return ChangeCause::kDiseaseDerived;
  }
  auto medicine_it = report.medicine_index.find(prescription.medicine);
  if (medicine_it != report.medicine_index.end() &&
      near(report.medicines[medicine_it->second])) {
    return ChangeCause::kMedicineDerived;
  }
  return ChangeCause::kPrescriptionDerived;
}

}  // namespace mic::trend
