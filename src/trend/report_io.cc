#include "trend/report_io.h"

#include <fstream>
#include <ostream>

#include "common/strings.h"

namespace mic::trend {
namespace {

void WriteRow(std::ostream& out, const Catalog& catalog,
              const SeriesAnalysis& analysis, std::string_view cause) {
  const char* kind = analysis.kind == SeriesKind::kDisease
                         ? "disease"
                         : (analysis.kind == SeriesKind::kMedicine
                                ? "medicine"
                                : "prescription");
  out << kind << ','
      << (analysis.kind == SeriesKind::kMedicine
              ? "-"
              : catalog.diseases().Name(analysis.disease).c_str())
      << ','
      << (analysis.kind == SeriesKind::kDisease
              ? "-"
              : catalog.medicines().Name(analysis.medicine).c_str())
      << ',' << (analysis.has_change ? 1 : 0) << ','
      << analysis.change_point << ','
      << StrFormat("%.6g", analysis.lambda) << ','
      << StrFormat("%.6g", analysis.aic) << ','
      << StrFormat("%.6g", analysis.aic_without_intervention) << ','
      << cause << "\n";
}

}  // namespace

Status WriteReportCsv(const TrendReport& report,
                      const TrendAnalyzer& analyzer, const Catalog& catalog,
                      std::ostream& out) {
  out << "kind,disease,medicine,change,month,lambda,criterion,"
         "criterion_no_change,cause\n";
  for (const SeriesAnalysis& analysis : report.diseases) {
    WriteRow(out, catalog, analysis, "-");
  }
  for (const SeriesAnalysis& analysis : report.medicines) {
    WriteRow(out, catalog, analysis, "-");
  }
  for (const SeriesAnalysis& analysis : report.prescriptions) {
    const ChangeCause cause =
        analyzer.ClassifyPrescriptionChange(report, analysis);
    WriteRow(out, catalog, analysis,
             analysis.has_change ? ChangeCauseName(cause) : "-");
  }
  if (!out.good()) return Status::IoError("stream failure writing report");
  return Status::OK();
}

Status WriteReportCsvFile(const TrendReport& report,
                          const TrendAnalyzer& analyzer,
                          const Catalog& catalog, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteReportCsv(report, analyzer, catalog, out);
}

Status WriteDrillDownCsv(const DrillDownReport& report, std::ostream& out) {
  out << "axis,node,parent,depth,leaf,total,change,month,lambda,"
         "criterion,criterion_no_change\n";
  for (const DrillNode& node : report.nodes) {
    out << DrillAxisName(report.axis) << ',' << node.name << ','
        << (node.parent < 0
                ? "-"
                : report.nodes[static_cast<std::size_t>(node.parent)]
                      .name.c_str())
        << ',' << node.depth << ',' << (node.is_leaf ? 1 : 0) << ','
        << StrFormat("%.6g", node.total) << ','
        << (node.analysis.has_change ? 1 : 0) << ','
        << node.analysis.change_point << ','
        << StrFormat("%.6g", node.analysis.lambda) << ','
        << StrFormat("%.6g", node.analysis.aic) << ','
        << StrFormat("%.6g", node.analysis.aic_without_intervention)
        << "\n";
  }
  if (!out.good()) {
    return Status::IoError("stream failure writing drill-down report");
  }
  return Status::OK();
}

Status WriteDrillDownCsvFile(const DrillDownReport& report,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteDrillDownCsv(report, out);
}

}  // namespace mic::trend
