// One-call convenience for the full Fig. 1 pipeline: corpus ->
// reproduced series -> per-series change detection -> classified report.

#ifndef MICTREND_TREND_PIPELINE_H_
#define MICTREND_TREND_PIPELINE_H_

#include "common/exec_context.h"
#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/dataset.h"
#include "runtime/thread_pool.h"
#include "trend/trend_analyzer.h"

namespace mic::trend {

struct PipelineOptions {
  medmodel::ReproducerOptions reproducer;
  TrendAnalyzerOptions analyzer;
  /// DEPRECATED: pass the pool via the ExecContext overload of
  /// RunPipeline instead; an explicit context's pool takes precedence
  /// over this field and the stage pools (see common/exec_context.h).
  /// Shared execution pool for both stages (not owned; null runs the
  /// whole pipeline inline). Propagated to the EM fits and the
  /// per-series change detection unless those options already carry
  /// their own pool. Output is bit-identical at any thread count.
  runtime::ThreadPool* pool = nullptr;
};

/// The pipeline's artifacts: the reproduced series (kept for follow-up
/// queries such as decomposition or repositioning screening) and the
/// analyzed report.
struct PipelineResult {
  medmodel::SeriesSet series;
  TrendReport report;
};

/// Runs reproduction + analysis over `corpus`.
Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineOptions& options = {});

/// ExecContext overload: the context flows through both stages under a
/// root "pipeline" span. context.pool (when set) overrides
/// options.pool AND any stage-level pools; context.metrics collects
/// every stage's counters (em.* / reproduce.* / ssm.* / changepoint.* /
/// trend.*). Counter values are bit-identical at any thread count —
/// the determinism test in tests/obs_test.cc holds this invariant.
Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineOptions& options,
                                   const ExecContext& context);

}  // namespace mic::trend

#endif  // MICTREND_TREND_PIPELINE_H_
