// One-call convenience for the full Fig. 1 pipeline: corpus ->
// reproduced series -> per-series change detection -> classified report.

#ifndef MICTREND_TREND_PIPELINE_H_
#define MICTREND_TREND_PIPELINE_H_

#include <string>

#include "cache/cache_store.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/dataset.h"
#include "store/backend.h"
#include "trend/drilldown.h"
#include "trend/trend_analyzer.h"

namespace mic::trend {

/// Where and how the pipeline caches its intermediate artifacts (EM
/// model snapshots, per-series analysis reports). kOff disables the
/// layer entirely; any other mode requires a directory.
struct CacheConfig {
  cache::CacheMode mode = cache::CacheMode::kOff;
  std::string directory;
};

/// Which persistent claim store (if any) the pipeline ingests from. The
/// layer is enabled by a non-empty directory; `backend` picks how
/// segment bytes reach memory (kAuto = mmap where available).
struct StoreConfig {
  std::string directory;
  store::BackendKind backend = store::BackendKind::kAuto;

  bool enabled() const { return !directory.empty(); }
};

/// The pipeline's full configuration, layered by stage. The CLI
/// populates one of these in a single place (tools/cli_common.cc) and
/// library callers construct it directly; RunPipeline validates it
/// before doing any work.
///
/// The former PipelineOptions::pool field (and the per-stage pools it
/// propagated into) is gone: execution resources travel exclusively in
/// the ExecContext. See docs/usage_cookbook.md for migration notes.
struct PipelineConfig {
  medmodel::ReproducerOptions reproducer;
  TrendAnalyzerOptions analyzer;
  CacheConfig cache;
  StoreConfig store;
  /// Hierarchy axes to roll the report up after analysis (empty = no
  /// drill-down). Each requested axis produces one DrillDownReport in
  /// PipelineResult::drilldowns, in this order.
  std::vector<DrillAxis> drilldown_axes;

  /// Rejects inconsistent configurations with a message naming the
  /// offending field and its CLI flag. OK means RunPipeline will not
  /// fail on configuration grounds.
  Status Validate() const;
};

/// The pipeline's artifacts: the reproduced series (kept for follow-up
/// queries such as decomposition or repositioning screening) and the
/// analyzed report.
struct PipelineResult {
  medmodel::SeriesSet series;
  TrendReport report;
  /// One tree per config.drilldown_axes entry, same order.
  std::vector<DrillDownReport> drilldowns;
};

/// Runs reproduction + analysis over `corpus`.
Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineConfig& config = {});

/// ExecContext overload: the context flows through both stages under a
/// root "pipeline" span. context.pool runs both stages (null = inline);
/// context.metrics collects every stage's counters (em.* / reproduce.*
/// / ssm.* / changepoint.* / trend.* / cache.*). Counter values are
/// bit-identical at any thread count — the determinism test in
/// tests/obs_test.cc holds this invariant.
///
/// Caching: when context.cache is attached it is used as-is and
/// config.cache is ignored. Otherwise, a non-kOff config.cache opens a
/// store for the duration of the call; an unopenable cache directory
/// degrades to a cold, uncached run with a logged warning rather than
/// failing the pipeline.
Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineConfig& config,
                                   const ExecContext& context);

/// Ingests the whole world from config.store (which must be enabled)
/// and runs the pipeline over it. The store is a source of truth, so an
/// unopenable or corrupt store FAILS the call — callers that hold the
/// original CSV (the CLI does) degrade to a cold parse themselves.
/// Reports are byte-identical to a RunPipeline call over the corpus the
/// store was imported from.
Result<PipelineResult> RunPipelineFromStore(const PipelineConfig& config,
                                            const ExecContext& context);

}  // namespace mic::trend

#endif  // MICTREND_TREND_PIPELINE_H_
