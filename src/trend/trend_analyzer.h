// End-to-end prescription trend analysis: reproduced series -> per-series
// change point detection -> change cause classification (Fig. 1's second
// stage plus the §VII-A application logic).
//
// A change in a prescription series (d, m) is attributed to:
//   - the disease when the disease series x_d also breaks nearby
//     (epidemiologic/diagnostic shifts),
//   - the medicine when the medicine series x_m also breaks nearby
//     (new medicine, price revision, generic entry),
//   - the prescription relationship itself when neither does
//     (e.g. indication expansion, the paper's drug-repositioning signal).

#ifndef MICTREND_TREND_TREND_ANALYZER_H_
#define MICTREND_TREND_TREND_ANALYZER_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/types.h"
#include "ssm/changepoint.h"

namespace mic::trend {

enum class SeriesKind : int {
  kDisease = 0,
  kMedicine = 1,
  kPrescription = 2,
};

/// Analysis outcome for one series.
struct SeriesAnalysis {
  SeriesKind kind = SeriesKind::kPrescription;
  DiseaseId disease;    // valid for kDisease / kPrescription
  MedicineId medicine;  // valid for kMedicine / kPrescription
  bool has_change = false;
  /// 0-based month of the detected change (kNoChangePoint when none).
  int change_point = ssm::kNoChangePoint;
  /// Intervention scale in original (unnormalized) units per month.
  double lambda = 0.0;
  double aic = 0.0;
  double aic_without_intervention = 0.0;
  /// Normalization divisor applied before fitting.
  double scale = 1.0;
  int fits_performed = 0;
};

enum class ChangeCause : int {
  kNone = 0,
  kDiseaseDerived = 1,
  kMedicineDerived = 2,
  kPrescriptionDerived = 3,
};

std::string_view ChangeCauseName(ChangeCause cause);

struct TrendAnalyzerOptions {
  TrendAnalyzerOptions() {
    // Counteract the select-the-minimum optimism of searching ~40
    // candidates per series (see ChangePointOptions::aic_margin);
    // margin 4 keeps full recall on genuine breaks in calibration runs
    // while suppressing spurious detections on structureless series.
    detector.aic_margin = 4.0;
    // A "change" explained by fewer than three trailing observations is
    // an outlier, not a trend break.
    detector.min_tail_observations = 3;
  }

  ssm::ChangePointOptions detector;
  /// Algorithm 2 (binary search) when true, Algorithm 1 otherwise.
  bool use_approximate = true;
  /// Divide each series by its sample SD before fitting (keeps the
  /// big-kappa diffuse threshold meaningful across scales).
  bool normalize = true;
  /// A disease/medicine break within this many months of a prescription
  /// break counts as its cause.
  int cause_window = 3;
  // The former `pool` field is gone: AnalyzeAll runs on the pool of the
  // ExecContext it is given (see common/exec_context.h and the
  // migration notes in docs/usage_cookbook.md).
};

/// Cache-key and snapshot helpers for persisted SeriesAnalysis entries.
/// Shared with the drill-down rollup (trend/drilldown.cc), whose "drill"
/// cache namespace reuses the same option fingerprint so editing any
/// verdict-affecting option re-keys both namespaces at once. The
/// fingerprint already mixes the analysis version salt.
std::uint64_t FingerprintAnalyzerOptions(const TrendAnalyzerOptions& options);
std::vector<std::uint8_t> SerializeAnalysis(const SeriesAnalysis& analysis);
Result<SeriesAnalysis> DeserializeAnalysis(
    const std::vector<std::uint8_t>& payload);

/// One series in a batch sweep (see TrendAnalyzer::SweepSeries).
/// In: `series` points at the monthly values (must outlive the call) and
/// `analysis.kind/disease/medicine` carry the caller's identity tags.
/// Out: `analysis` holds the full verdict (scale, change point, AIC,
/// lambda, fits) and `status` the per-series failure, if any.
struct SweepItem {
  const std::vector<double>* series = nullptr;
  SeriesAnalysis analysis;
  Status status;
};

/// Full report over a SeriesSet.
struct TrendReport {
  std::vector<SeriesAnalysis> diseases;
  std::vector<SeriesAnalysis> medicines;
  std::vector<SeriesAnalysis> prescriptions;

  /// Index into `diseases` / `medicines` by id (for cause lookup).
  std::unordered_map<DiseaseId, std::size_t> disease_index;
  std::unordered_map<MedicineId, std::size_t> medicine_index;

  std::size_t CountChanges(SeriesKind kind) const;
};

class TrendAnalyzer {
 public:
  explicit TrendAnalyzer(const TrendAnalyzerOptions& options = {})
      : options_(options) {}

  /// Analyzes a single series (already reproduced). Context-first, like
  /// every entry point: context.metrics flows into the per-series
  /// ChangePointDetector (changepoint.* / ssm.* counters); the pool is
  /// not consulted — a single series is always fitted serially, so this
  /// is safe to call from inside a ParallelFor worker. Takes a view so
  /// per-task callers never copy the series just to hand it over; the
  /// one normalized working copy is made inside.
  ///
  /// (The former context-less convenience overloads are gone; pass
  /// ExecContext{} explicitly. See docs/usage_cookbook.md.)
  Result<SeriesAnalysis> AnalyzeSeries(const ExecContext& context,
                                       SeriesKind kind, DiseaseId d,
                                       MedicineId m,
                                       std::span<const double> series) const;

  /// Analyzes every disease, medicine, and prescription series in `set`.
  /// context.pool runs the candidate-level sweep (null = inline), and
  /// context.metrics receives the stage's counters
  /// (trend.series_analyzed / trend.series_fits /
  /// trend.changes_detected / trend.cause.*) under a "detect" span,
  /// plus the per-candidate trend.series_fit timer.
  ///
  /// Parallel decomposition: every series runs the resumable
  /// ChangePointDetector search, and each round batches the pending
  /// candidate fits of ALL series through one ParallelFor — so the pool
  /// sees series_count x candidates_per_round independent fits instead
  /// of one task per series whose internal sweep runs serially. All
  /// detector bookkeeping happens on the calling thread in task order,
  /// which keeps the report and every counter bit-identical at any
  /// thread count (and identical to the serial AnalyzeSeries path).
  ///
  /// context.cache (when attached) drives the dirty-set sweep: each
  /// series' analysis is keyed in the "series" namespace by a
  /// fingerprint of (kind, ids, series values, analyzer + detector
  /// options). Unchanged series are answered from the cached
  /// SeriesAnalysis without fitting (trend.series_cache_hits); changed
  /// or new ones are fitted and written back
  /// (trend.series_cache_misses). Hits reproduce the cached analysis
  /// field-for-field — including fits_performed — so a warm report is
  /// byte-identical to the cold one at any thread count.
  Result<TrendReport> AnalyzeAll(const ExecContext& context,
                                 const medmodel::SeriesSet& set) const;

  /// Runs the candidate-level wavefront over a caller-assembled batch:
  /// per-item normalization preamble in item order, then each round
  /// gathers the pending candidate fits of ALL open searches into one
  /// ParallelFor on context.pool, with detector bookkeeping folded back
  /// serially in item order — the same bit-for-bit determinism contract
  /// as AnalyzeAll, which is itself built on this call. Per-series
  /// failures land in item.status (the item's analysis is then
  /// untouched); the returned Status only reports pool dispatch
  /// failures. Does NOT consult context.cache — callers own their
  /// cache namespace and policy (AnalyzeAll uses "series", the
  /// drill-down rollup "drill").
  Status SweepSeries(const ExecContext& context,
                     std::span<SweepItem> items) const;

  /// Attributes a detected prescription change using the disease and
  /// medicine verdicts already present in `report`. Returns kNone when
  /// the prescription series has no change.
  ChangeCause ClassifyPrescriptionChange(
      const TrendReport& report, const SeriesAnalysis& prescription) const;

 private:
  TrendAnalyzerOptions options_;
};

}  // namespace mic::trend

#endif  // MICTREND_TREND_TREND_ANALYZER_H_
