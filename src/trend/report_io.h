// CSV serialization of trend analysis reports (the CLI's `pipeline
// --out` artifact).
//
// Format (header required):
//   kind,disease,medicine,change,month,lambda,criterion,
//   criterion_no_change,cause
// `cause` is filled for prescription rows with a detected change and
// "-" otherwise.

#ifndef MICTREND_TREND_REPORT_IO_H_
#define MICTREND_TREND_REPORT_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "mic/catalog.h"
#include "trend/drilldown.h"
#include "trend/trend_analyzer.h"

namespace mic::trend {

Status WriteReportCsv(const TrendReport& report,
                      const TrendAnalyzer& analyzer, const Catalog& catalog,
                      std::ostream& out);
Status WriteReportCsvFile(const TrendReport& report,
                          const TrendAnalyzer& analyzer,
                          const Catalog& catalog, const std::string& path);

/// Drill-down tree as CSV, one row per node in storage order:
///   axis,node,parent,depth,leaf,total,change,month,lambda,criterion,
///   criterion_no_change
/// `parent` is the parent node's name ("-" for the root). The row
/// order, like the tree, is deterministic at any thread count.
Status WriteDrillDownCsv(const DrillDownReport& report, std::ostream& out);
Status WriteDrillDownCsvFile(const DrillDownReport& report,
                             const std::string& path);

}  // namespace mic::trend

#endif  // MICTREND_TREND_REPORT_IO_H_
