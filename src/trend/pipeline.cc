#include "trend/pipeline.h"

#include "common/logging.h"
#include "obs/trace.h"
#include "store/claim_store.h"

namespace mic::trend {

Status PipelineConfig::Validate() const {
  if (cache.mode != cache::CacheMode::kOff && cache.directory.empty()) {
    return Status::InvalidArgument(
        "cache.directory must be set when cache.mode is '" +
        std::string(cache::CacheModeName(cache.mode)) +
        "' (pass --cache-dir alongside --cache)");
  }
  if (cache.mode == cache::CacheMode::kOff && !cache.directory.empty()) {
    return Status::InvalidArgument(
        "cache.directory is set but cache.mode is 'off' (pass "
        "--cache={read,write,rw} alongside --cache-dir)");
  }
  if (store.enabled() && store.backend == store::BackendKind::kMmap &&
      !store::MmapAvailable()) {
    return Status::NotImplemented(
        "store.backend is 'mmap' but this platform cannot memory-map "
        "segments (pass --store=file or --store=auto)");
  }
  if (analyzer.cause_window < 0) {
    return Status::InvalidArgument(
        "analyzer.cause_window must be >= 0 (--cause-window)");
  }
  if (analyzer.detector.min_candidate < 1) {
    return Status::InvalidArgument(
        "analyzer.detector.min_candidate must be >= 1");
  }
  if (analyzer.detector.min_tail_observations < 1) {
    return Status::InvalidArgument(
        "analyzer.detector.min_tail_observations must be >= 1");
  }
  if (analyzer.detector.candidate_kinds.empty()) {
    return Status::InvalidArgument(
        "analyzer.detector.candidate_kinds must not be empty");
  }
  if (reproducer.model_options.max_iterations < 1) {
    return Status::InvalidArgument(
        "reproducer.model_options.max_iterations must be >= 1 "
        "(--em-iterations)");
  }
  if (!(reproducer.model_options.tolerance > 0.0)) {
    return Status::InvalidArgument(
        "reproducer.model_options.tolerance must be > 0 (--em-tolerance)");
  }
  return Status::OK();
}

Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineConfig& config) {
  return RunPipeline(corpus, config, ExecContext{});
}

Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineConfig& config,
                                   const ExecContext& context) {
  MIC_RETURN_IF_ERROR(config.Validate());
  obs::Span pipeline_span(context, "pipeline");

  // An explicitly attached store wins; otherwise config.cache may open
  // one scoped to this call. Failure to open is deliberately not fatal:
  // the cache is an accelerator, so the run proceeds cold.
  ExecContext stage_context = context;
  cache::CacheStore local_store(config.cache.directory, config.cache.mode,
                                context.metrics);
  if (context.cache == nullptr &&
      config.cache.mode != cache::CacheMode::kOff) {
    Status opened = local_store.Open();
    if (opened.ok()) {
      stage_context.cache = &local_store;
    } else {
      MIC_LOG(Warning) << "cache disabled for this run: "
                       << opened.ToString();
    }
  }

  MIC_ASSIGN_OR_RETURN(
      medmodel::SeriesSet series,
      medmodel::ReproduceSeries(corpus, config.reproducer, stage_context));
  TrendAnalyzer analyzer(config.analyzer);
  MIC_ASSIGN_OR_RETURN(TrendReport report,
                       analyzer.AnalyzeAll(stage_context, series));
  std::vector<DrillDownReport> drilldowns;
  drilldowns.reserve(config.drilldown_axes.size());
  for (DrillAxis axis : config.drilldown_axes) {
    MIC_ASSIGN_OR_RETURN(DrillDownReport drill,
                         BuildDrillDown(stage_context, corpus, series,
                                        report, axis, config.analyzer));
    drilldowns.push_back(std::move(drill));
  }
  return PipelineResult{std::move(series), std::move(report),
                        std::move(drilldowns)};
}

Result<PipelineResult> RunPipelineFromStore(const PipelineConfig& config,
                                            const ExecContext& context) {
  MIC_RETURN_IF_ERROR(config.Validate());
  if (!config.store.enabled()) {
    return Status::InvalidArgument(
        "config.store.directory must be set to ingest from a store "
        "(pass --store-dir)");
  }
  MicCorpus corpus;
  {
    // The store closes before the pipeline runs — every segment is
    // already decoded into the corpus, so keeping mappings alive buys
    // nothing.
    obs::Span ingest_span(context, "ingest/store");
    MIC_ASSIGN_OR_RETURN(
        store::ClaimStore store,
        store::ClaimStore::Open(config.store.directory,
                                {.backend = config.store.backend},
                                context.metrics));
    MIC_ASSIGN_OR_RETURN(corpus, store.OpenWorld());
  }
  return RunPipeline(corpus, config, context);
}

}  // namespace mic::trend
