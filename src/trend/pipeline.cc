#include "trend/pipeline.h"

#include "obs/trace.h"

namespace mic::trend {

Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineOptions& options) {
  return RunPipeline(corpus, options, ExecContext{});
}

Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineOptions& options,
                                   const ExecContext& context) {
  obs::Span pipeline_span(context, "pipeline");

  // Resolve the pool each stage runs on. An explicitly passed context
  // pool wins everywhere; otherwise the legacy propagation applies: the
  // shared options.pool fills any stage pool still unset.
  medmodel::ReproducerOptions reproducer = options.reproducer;
  TrendAnalyzerOptions analyzer_options = options.analyzer;
  ExecContext stage_context;
  stage_context.metrics = context.metrics;
  stage_context.trace = context.trace;
  if (context.pool != nullptr) {
    stage_context.pool = context.pool;
  } else if (options.pool != nullptr) {
    if (reproducer.model_options.pool == nullptr) {
      reproducer.model_options.pool = options.pool;
    }
    if (analyzer_options.pool == nullptr) {
      analyzer_options.pool = options.pool;
    }
  }
  MIC_ASSIGN_OR_RETURN(
      medmodel::SeriesSet series,
      medmodel::ReproduceSeries(corpus, reproducer, stage_context));
  TrendAnalyzer analyzer(analyzer_options);
  MIC_ASSIGN_OR_RETURN(TrendReport report,
                       analyzer.AnalyzeAll(series, stage_context));
  return PipelineResult{std::move(series), std::move(report)};
}

}  // namespace mic::trend
