#include "trend/pipeline.h"

namespace mic::trend {

Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineOptions& options) {
  MIC_ASSIGN_OR_RETURN(
      medmodel::SeriesSet series,
      medmodel::ReproduceSeries(corpus, options.reproducer));
  TrendAnalyzer analyzer(options.analyzer);
  MIC_ASSIGN_OR_RETURN(TrendReport report, analyzer.AnalyzeAll(series));
  return PipelineResult{std::move(series), std::move(report)};
}

}  // namespace mic::trend
