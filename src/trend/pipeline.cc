#include "trend/pipeline.h"

namespace mic::trend {

Result<PipelineResult> RunPipeline(const MicCorpus& corpus,
                                   const PipelineOptions& options) {
  // Propagate the shared pool into both stages unless a stage already
  // carries its own.
  medmodel::ReproducerOptions reproducer = options.reproducer;
  TrendAnalyzerOptions analyzer_options = options.analyzer;
  if (options.pool != nullptr) {
    if (reproducer.model_options.pool == nullptr) {
      reproducer.model_options.pool = options.pool;
    }
    if (analyzer_options.pool == nullptr) {
      analyzer_options.pool = options.pool;
    }
  }
  MIC_ASSIGN_OR_RETURN(medmodel::SeriesSet series,
                       medmodel::ReproduceSeries(corpus, reproducer));
  TrendAnalyzer analyzer(analyzer_options);
  MIC_ASSIGN_OR_RETURN(TrendReport report, analyzer.AnalyzeAll(series));
  return PipelineResult{std::move(series), std::move(report)};
}

}  // namespace mic::trend
