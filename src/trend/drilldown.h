// Hierarchical drill-down over the trend report (ROADMAP item; the
// hierarchical cost-driver approach of Li & Jiang et al. in PAPERS.md):
// aggregate per-series monthly quantities up one hierarchy axis, run
// the existing changepoint/AIC machinery on every aggregate, and search
// downward for the smallest subgroup explaining an aggregate shift.
//
// Axes mirror the hierarchies the corpus already carries:
//   medicine  : all -> ATC-like class (name minus its final
//               hyphen-separated segment) -> medicine
//   disease   : all -> chapter (same name rule) -> disease
//   hospital  : all -> city -> bed-size class within the city
//               (paper §VII-C buckets) -> hospital
//
// Everything here is deterministic by construction: children are sorted
// by name, aggregation sums children in that order, and fresh analyses
// run through TrendAnalyzer::SweepSeries (the PR 6 wavefront), so a
// drill-down report is bit-identical at any thread count.

#ifndef MICTREND_TREND_DRILLDOWN_H_
#define MICTREND_TREND_DRILLDOWN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/dataset.h"
#include "trend/trend_analyzer.h"

namespace mic::trend {

enum class DrillAxis : int {
  kMedicine = 0,
  kDisease = 1,
  kHospital = 2,
};

inline constexpr int kNumDrillAxes = 3;

/// Stable wire/CLI name ("medicine" / "disease" / "hospital").
std::string_view DrillAxisName(DrillAxis axis);

/// Inverse of DrillAxisName; InvalidArgument names the offender and the
/// accepted values.
Result<DrillAxis> ParseDrillAxis(std::string_view name);

/// One node of a drill-down tree. Nodes are stored in topological
/// order (node 0 is the root and a child's index is always greater
/// than its parent's), `children` holds node indexes sorted by child
/// name, and `series` is the
/// node's monthly aggregate — a leaf's own series, or the elementwise
/// sum of its children in `children` order for an internal node (fixed
/// summation order keeps the floating-point result deterministic).
struct DrillNode {
  std::string name;
  int parent = -1;
  int depth = 0;
  std::vector<int> children;
  bool is_leaf = false;
  std::vector<double> series;
  double total = 0.0;
  /// Changepoint verdict for `series`. Medicine/disease-axis leaves
  /// reuse the flat report's analysis; every other node is fitted on
  /// its aggregate (through context.cache, namespace "drill").
  SeriesAnalysis analysis;
};

struct DrillDownReport {
  DrillAxis axis = DrillAxis::kMedicine;
  int num_months = 0;
  std::vector<DrillNode> nodes;

  /// Index of the node named `name`; -1 when absent. Names are unique
  /// except in an own-class chain (a hyphen-free leaf under a class
  /// node of the same name), where the class node — first in storage
  /// order — wins; an explain starting there still descends to the
  /// leaf. Bed-size nodes are city-qualified ("metro/small").
  int FindNode(std::string_view name) const;
};

/// Builds the drill-down tree for one axis. `report` supplies the
/// already-fitted leaf analyses for the medicine/disease axes (leaves
/// missing from it — e.g. degenerate series skipped by AnalyzeAll — are
/// fitted fresh); the hospital axis derives its leaf series from the
/// corpus records (total medicine mentions per hospital per month) and
/// fits every node. `options` must be the analyzer options the flat
/// report was built with, both for verdict consistency and because they
/// key the drill cache.
///
/// Counters (context.metrics): trend.rollup.nodes,
/// trend.rollup.leaf_reuses, trend.rollup.cache_hits,
/// trend.rollup.cache_misses, all under a "drilldown" span.
Result<DrillDownReport> BuildDrillDown(const ExecContext& context,
                                       const MicCorpus& corpus,
                                       const medmodel::SeriesSet& series,
                                       const TrendReport& report,
                                       DrillAxis axis,
                                       const TrendAnalyzerOptions& options);

/// One hop of a subgroup-search descent: `share` is this node's
/// contribution to its parent step's shift (1.0 for the first step).
struct ExplainStep {
  std::string node;
  double delta = 0.0;
  double share = 1.0;
};

struct ExplainResult {
  std::string target;
  /// The target's detected change month; all deltas compare the mean
  /// level from this month on against the mean level before it.
  int change_month = -1;
  double delta = 0.0;
  double min_share = 0.0;
  /// Descent from the target to the driver, target first.
  std::vector<ExplainStep> path;
  /// The smallest subgroup explaining the shift (last node on `path`).
  std::string driver;
  /// driver delta / target delta.
  double driver_share = 1.0;
};

/// Subgroup search: starting at `target_node` (which must have a
/// detected change), greedily descends to the child contributing the
/// largest same-direction share of the current node's level shift,
/// while that share stays >= `min_share`; exact ties pick the child
/// earliest in preorder (= lowest name among siblings). NotFound when
/// the node does not exist or has no detected change.
Result<ExplainResult> ExplainShift(const DrillDownReport& report,
                                   std::string_view target_node,
                                   double min_share = 0.6);

}  // namespace mic::trend

#endif  // MICTREND_TREND_DRILLDOWN_H_
