#include "trend/drilldown.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "cache/cache_store.h"
#include "cache/fingerprint.h"
#include "common/logging.h"
#include "mic/catalog.h"
#include "obs/trace.h"
#include "stats/metrics.h"

namespace mic::trend {

std::string_view DrillAxisName(DrillAxis axis) {
  switch (axis) {
    case DrillAxis::kMedicine:
      return "medicine";
    case DrillAxis::kDisease:
      return "disease";
    case DrillAxis::kHospital:
      return "hospital";
  }
  return "?";
}

Result<DrillAxis> ParseDrillAxis(std::string_view name) {
  if (name == "medicine") return DrillAxis::kMedicine;
  if (name == "disease") return DrillAxis::kDisease;
  if (name == "hospital") return DrillAxis::kHospital;
  return Status::InvalidArgument("unknown axis '" + std::string(name) +
                                 "' (expected medicine|disease|hospital)");
}

int DrillDownReport::FindNode(std::string_view name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// ATC-like class of a synthetic name: the name minus its final
// hyphen-separated segment ("bronchodilator-new" -> "bronchodilator").
// A name with no hyphen is its own class (a single-child chain).
std::string ClassOf(std::string_view name) {
  const std::size_t cut = name.rfind('-');
  if (cut == std::string_view::npos || cut == 0) return std::string(name);
  return std::string(name.substr(0, cut));
}

// A leaf gathered before tree assembly: `series` points into the
// SeriesSet / a local buffer that outlives BuildTree; `flat_index` is
// the row in the flat report to reuse (-1 = fit fresh).
struct Leaf {
  std::string name;
  const std::vector<double>* series;
  int flat_index;
};

// A (group path, leaves) bucket; `path` is the chain of internal-node
// names between the root and the leaves (exclusive of both).
struct Group {
  std::vector<std::string> path;
  std::vector<Leaf> leaves;
};

// Assembles the preorder node tree from grouped leaves: root, then each
// group's internal chain followed by its leaves. Groups must arrive
// sorted by path; leaves are sorted here. Series fill happens after.
DrillDownReport BuildTree(DrillAxis axis, int num_months,
                          std::vector<Group> groups) {
  DrillDownReport report;
  report.axis = axis;
  report.num_months = num_months;

  DrillNode root;
  root.name = "all";
  report.nodes.push_back(std::move(root));

  for (Group& group : groups) {
    std::sort(group.leaves.begin(), group.leaves.end(),
              [](const Leaf& a, const Leaf& b) { return a.name < b.name; });
    int parent = 0;
    for (const std::string& label : group.path) {
      // Groups arrive path-sorted, so a shared prefix (e.g. the city
      // above two bed-size classes) was created by an earlier group;
      // reuse it instead of opening a duplicate chain.
      int existing = -1;
      for (int child : report.nodes[parent].children) {
        if (report.nodes[child].name == label) {
          existing = child;
          break;
        }
      }
      if (existing >= 0) {
        parent = existing;
        continue;
      }
      DrillNode node;
      node.name = label;
      node.parent = parent;
      node.depth = report.nodes[parent].depth + 1;
      const int index = static_cast<int>(report.nodes.size());
      report.nodes[parent].children.push_back(index);
      report.nodes.push_back(std::move(node));
      parent = index;
    }
    for (Leaf& leaf : group.leaves) {
      DrillNode node;
      node.name = std::move(leaf.name);
      node.parent = parent;
      node.depth = report.nodes[parent].depth + 1;
      node.is_leaf = true;
      node.series = *leaf.series;
      node.analysis.fits_performed = leaf.flat_index;  // Stash; see below.
      const int index = static_cast<int>(report.nodes.size());
      report.nodes[parent].children.push_back(index);
      report.nodes.push_back(std::move(node));
    }
  }
  return report;
}

// Fills internal-node series bottom-up (reverse preorder: children
// always follow their parent, so they are summed before the parent is
// visited) and every node's window total. Summation follows the sorted
// `children` order — a fixed order keeps the floats deterministic.
void FillAggregates(DrillDownReport& report) {
  for (std::size_t r = report.nodes.size(); r-- > 0;) {
    DrillNode& node = report.nodes[r];
    if (!node.is_leaf) {
      node.series.assign(static_cast<std::size_t>(report.num_months), 0.0);
      for (int child : node.children) {
        const std::vector<double>& values = report.nodes[child].series;
        for (std::size_t t = 0; t < values.size(); ++t) {
          node.series[t] += values[t];
        }
      }
    }
    node.total = 0.0;
    for (double value : node.series) node.total += value;
  }
}

// Cache key for one node's aggregate verdict: the shared analyzer
// option fingerprint (which carries the series-analysis version salt),
// a drill-layout version, the axis, the node's name, and its values.
constexpr std::uint64_t kDrillLayoutVersion = 1;

std::uint64_t FingerprintDrillNode(std::uint64_t options_key, DrillAxis axis,
                                   const DrillNode& node) {
  cache::Hasher hasher;
  hasher.Mix(kDrillLayoutVersion);
  hasher.Mix(options_key);
  hasher.MixSigned(static_cast<std::int64_t>(axis));
  hasher.MixString(node.name);
  hasher.Mix(cache::FingerprintSeries(node.series));
  return hasher.digest();
}

SeriesKind AxisSeriesKind(DrillAxis axis) {
  switch (axis) {
    case DrillAxis::kMedicine:
      return SeriesKind::kMedicine;
    case DrillAxis::kDisease:
      return SeriesKind::kDisease;
    case DrillAxis::kHospital:
      return SeriesKind::kPrescription;
  }
  return SeriesKind::kPrescription;
}

// Mean level after `t_cp` (inclusive) minus the mean level before it.
double LevelShift(const std::vector<double>& series, int t_cp) {
  if (t_cp <= 0 || t_cp >= static_cast<int>(series.size())) return 0.0;
  double before = 0.0;
  double after = 0.0;
  for (int t = 0; t < t_cp; ++t) before += series[static_cast<std::size_t>(t)];
  for (int t = t_cp; t < static_cast<int>(series.size()); ++t) {
    after += series[static_cast<std::size_t>(t)];
  }
  before /= static_cast<double>(t_cp);
  after /= static_cast<double>(static_cast<int>(series.size()) - t_cp);
  return after - before;
}

}  // namespace

Result<DrillDownReport> BuildDrillDown(const ExecContext& context,
                                       const MicCorpus& corpus,
                                       const medmodel::SeriesSet& series,
                                       const TrendReport& report,
                                       DrillAxis axis,
                                       const TrendAnalyzerOptions& options) {
  obs::Span drill_span(context, "drilldown");
  obs::MetricsRegistry* metrics = context.metrics;
  const Catalog& catalog = corpus.catalog();
  const int num_months = series.num_months() > 0
                             ? series.num_months()
                             : static_cast<int>(corpus.num_months());

  // --- Gather leaves and their grouping paths. -------------------------
  // Hospital leaf series are derived here (per-hospital monthly total of
  // medicine mentions) and must outlive BuildTree's copies.
  std::vector<std::vector<double>> hospital_series;
  std::vector<Group> groups;

  if (axis == DrillAxis::kHospital) {
    // One pass over the records: hospital -> monthly prescription load.
    hospital_series.assign(catalog.hospitals().size(),
                           std::vector<double>());
    for (std::size_t t = 0; t < corpus.num_months(); ++t) {
      for (const MicRecord& record : corpus.month(t).records()) {
        const std::size_t h = record.hospital.value();
        if (h >= hospital_series.size()) continue;
        if (hospital_series[h].empty()) {
          hospital_series[h].assign(
              static_cast<std::size_t>(num_months), 0.0);
        }
        hospital_series[h][t] +=
            static_cast<double>(record.TotalMedicineMentions());
      }
    }
    // Group by (city, bed-size class); hospitals without registered
    // attributes land under city "unknown" as small (beds 0).
    std::vector<std::pair<std::vector<std::string>, Leaf>> entries;
    for (std::size_t h = 0; h < hospital_series.size(); ++h) {
      if (hospital_series[h].empty()) continue;  // Never seen in corpus.
      const HospitalId id(static_cast<std::uint32_t>(h));
      std::string city = "unknown";
      std::uint32_t beds = 0;
      if (auto info = catalog.GetHospitalInfo(id); info.ok()) {
        city = catalog.cities().Name(info->city);
        beds = info->beds;
      }
      const std::string size_class(
          HospitalClassName(ClassifyHospital(beds)));
      // Bed-size nodes are name-qualified by city so every node name in
      // the tree is unique (FindNode and the explain op key on names).
      entries.push_back({{city, city + "/" + size_class},
                         {catalog.hospitals().Name(id),
                          &hospital_series[h], -1}});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& entry : entries) {
      if (groups.empty() || groups.back().path != entry.first) {
        groups.push_back({entry.first, {}});
      }
      groups.back().leaves.push_back(std::move(entry.second));
    }
  } else {
    // Medicine / disease axis: leaves are the flat report's series,
    // grouped under their ATC-like class (single-child chains when a
    // class has one member or the name has no hyphen).
    std::vector<std::pair<std::vector<std::string>, Leaf>> entries;
    if (axis == DrillAxis::kMedicine) {
      series.ForEachMedicine([&](MedicineId m,
                                 const std::vector<double>& values) {
        const std::string& name = catalog.medicines().Name(m);
        auto it = report.medicine_index.find(m);
        const int flat = it == report.medicine_index.end()
                             ? -1
                             : static_cast<int>(it->second);
        entries.push_back({{ClassOf(name)}, {name, &values, flat}});
      });
    } else {
      series.ForEachDisease([&](DiseaseId d,
                                const std::vector<double>& values) {
        const std::string& name = catalog.diseases().Name(d);
        auto it = report.disease_index.find(d);
        const int flat = it == report.disease_index.end()
                             ? -1
                             : static_cast<int>(it->second);
        entries.push_back({{ClassOf(name)}, {name, &values, flat}});
      });
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& entry : entries) {
      if (groups.empty() || groups.back().path != entry.first) {
        groups.push_back({entry.first, {}});
      }
      groups.back().leaves.push_back(std::move(entry.second));
    }
  }

  DrillDownReport drill = BuildTree(axis, num_months, std::move(groups));
  FillAggregates(drill);

  // --- Analyze every node. --------------------------------------------
  // Leaves with a flat-report row reuse it verbatim (their series are
  // exactly the rows AnalyzeAll fitted); everything else — internal
  // aggregates, unmatched leaves, all hospital nodes — goes through the
  // cache and then the wavefront. BuildTree stashed the flat index in
  // analysis.fits_performed; consume and reset it here.
  const std::vector<SeriesAnalysis>& flat_rows =
      axis == DrillAxis::kDisease ? report.diseases : report.medicines;
  const SeriesKind kind = AxisSeriesKind(axis);
  std::uint64_t leaf_reuses = 0;

  std::vector<std::size_t> pending;  // Node indexes needing a verdict.
  for (std::size_t i = 0; i < drill.nodes.size(); ++i) {
    DrillNode& node = drill.nodes[i];
    const int flat = node.analysis.fits_performed;
    node.analysis = SeriesAnalysis();
    node.analysis.kind = kind;
    if (node.is_leaf && axis != DrillAxis::kHospital && flat >= 0 &&
        flat < static_cast<int>(flat_rows.size())) {
      node.analysis = flat_rows[static_cast<std::size_t>(flat)];
      ++leaf_reuses;
      continue;
    }
    pending.push_back(i);
  }

  // Serial cache prepass in preorder, mirroring AnalyzeAll's dirty-set
  // sweep (deterministic hit/miss accounting at any thread count).
  cache::CacheStore* store = context.cache;
  const bool cache_active =
      store != nullptr && (store->can_read() || store->can_write());
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> uncached;
  if (cache_active) {
    const std::uint64_t options_key = FingerprintAnalyzerOptions(options);
    keys.resize(pending.size());
    std::uint64_t hits = 0;
    for (std::size_t p = 0; p < pending.size(); ++p) {
      DrillNode& node = drill.nodes[pending[p]];
      keys[p] = FingerprintDrillNode(options_key, axis, node);
      if (!store->can_read()) {
        uncached.push_back(p);
        continue;
      }
      auto payload = store->Get("drill", keys[p]);
      if (payload.ok()) {
        auto cached = DeserializeAnalysis(*payload);
        if (cached.ok() && cached->kind == kind) {
          node.analysis = std::move(*cached);
          ++hits;
          continue;
        }
      }
      uncached.push_back(p);
    }
    if (metrics != nullptr) {
      obs::Increment(obs::GetCounter(metrics, "trend.rollup.cache_hits"),
                     hits);
      obs::Increment(obs::GetCounter(metrics, "trend.rollup.cache_misses"),
                     static_cast<std::uint64_t>(pending.size()) - hits);
    }
  } else {
    uncached.resize(pending.size());
    for (std::size_t p = 0; p < pending.size(); ++p) uncached[p] = p;
  }

  // Fit the remainder through the shared wavefront, in preorder.
  std::vector<SweepItem> sweep(uncached.size());
  for (std::size_t j = 0; j < uncached.size(); ++j) {
    DrillNode& node = drill.nodes[pending[uncached[j]]];
    sweep[j].series = &node.series;
    sweep[j].analysis.kind = kind;
  }
  TrendAnalyzer analyzer(options);
  MIC_RETURN_IF_ERROR(analyzer.SweepSeries(context, sweep));
  Status first_error = Status::OK();
  for (std::size_t j = 0; j < uncached.size(); ++j) {
    const std::size_t p = uncached[j];
    DrillNode& node = drill.nodes[pending[p]];
    if (!sweep[j].status.ok()) {
      // Mirror AnalyzeAll's policy: degenerate series keep their
      // no-change default, anything else fails the build.
      if (first_error.ok() &&
          sweep[j].status.code() != StatusCode::kInvalidArgument) {
        first_error = sweep[j].status;
      }
      continue;
    }
    node.analysis = std::move(sweep[j].analysis);
    if (cache_active && store->can_write()) {
      Status put =
          store->Put("drill", keys[p], SerializeAnalysis(node.analysis));
      if (!put.ok()) {
        MIC_LOG(Warning) << "drill cache write failed: " << put.ToString();
      }
    }
  }
  MIC_RETURN_IF_ERROR(first_error);

  if (metrics != nullptr) {
    obs::Increment(obs::GetCounter(metrics, "trend.rollup.nodes"),
                   drill.nodes.size());
    obs::Increment(obs::GetCounter(metrics, "trend.rollup.leaf_reuses"),
                   leaf_reuses);
  }
  return drill;
}

Result<ExplainResult> ExplainShift(const DrillDownReport& report,
                                   std::string_view target_node,
                                   double min_share) {
  const int target = report.FindNode(target_node);
  if (target < 0) {
    return Status::NotFound("unknown node '" + std::string(target_node) +
                            "' on the " +
                            std::string(DrillAxisName(report.axis)) +
                            " axis");
  }
  const DrillNode& root = report.nodes[static_cast<std::size_t>(target)];
  if (!root.analysis.has_change) {
    return Status::NotFound("node '" + std::string(target_node) +
                            "' has no detected change to explain");
  }

  ExplainResult result;
  result.target = root.name;
  result.change_month = root.analysis.change_point;
  result.min_share = min_share;
  result.delta = LevelShift(root.series, result.change_month);
  result.path.push_back({root.name, result.delta, 1.0});

  const double direction = result.delta < 0.0 ? -1.0 : 1.0;
  int current = target;
  double current_delta = result.delta;
  while (current_delta != 0.0) {
    const DrillNode& node = report.nodes[static_cast<std::size_t>(current)];
    if (node.children.empty()) break;
    // Children are preorder-sorted by name; a strict `>` keeps the
    // first (lowest-named, lowest-index) child on exact ties.
    int best = -1;
    double best_score = 0.0;
    double best_delta = 0.0;
    for (int child : node.children) {
      const double child_delta = LevelShift(
          report.nodes[static_cast<std::size_t>(child)].series,
          result.change_month);
      const double score = direction * child_delta;
      if (best < 0 || score > best_score) {
        best = child;
        best_score = score;
        best_delta = child_delta;
      }
    }
    if (best < 0) break;
    const double share = best_delta / current_delta;
    if (!(share >= min_share)) break;  // NaN-safe: stop on any doubt.
    result.path.push_back(
        {report.nodes[static_cast<std::size_t>(best)].name, best_delta,
         share});
    current = best;
    current_delta = best_delta;
  }

  result.driver = result.path.back().node;
  result.driver_share =
      result.delta == 0.0 ? 1.0 : result.path.back().delta / result.delta;
  return result;
}

}  // namespace mic::trend
