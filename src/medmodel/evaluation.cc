#include "medmodel/evaluation.h"

#include <algorithm>
#include <cmath>

namespace mic::medmodel {

HoldoutSplit SplitMedicines(const MonthlyDataset& month,
                            double test_fraction, Rng& rng) {
  HoldoutSplit split;
  split.train.set_month(month.month());
  for (const MicRecord& record : month.records()) {
    MicRecord train_record;
    train_record.hospital = record.hospital;
    train_record.patient = record.patient;
    train_record.diseases = record.diseases;

    // Expand mentions, split each independently.
    std::vector<MedicineId> train_mentions;
    std::vector<MedicineId> test_mentions;
    for (const auto& entry : record.medicines) {
      for (std::uint32_t i = 0; i < entry.count; ++i) {
        if (rng.NextBernoulli(test_fraction)) {
          test_mentions.push_back(entry.id);
        } else {
          train_mentions.push_back(entry.id);
        }
      }
    }
    // Keep the record trainable: move one mention back when everything
    // was held out.
    if (train_mentions.empty() && !test_mentions.empty()) {
      const std::size_t pick = rng.NextBounded(test_mentions.size());
      train_mentions.push_back(test_mentions[pick]);
      test_mentions.erase(test_mentions.begin() +
                          static_cast<std::ptrdiff_t>(pick));
    }
    for (MedicineId m : train_mentions) {
      train_record.medicines.push_back({m, 1});
    }
    train_record.Normalize();
    split.train.AddRecord(std::move(train_record));
    split.test_medicines.push_back(std::move(test_mentions));
  }
  return split;
}

Result<double> Perplexity(const LinkModel& model, const HoldoutSplit& split,
                          const PerplexityOptions& options) {
  if (options.min_probability <= 0.0) {
    return Status::InvalidArgument("min_probability must be positive");
  }
  double log_probability_sum = 0.0;
  std::size_t mention_count = 0;
  const auto& records = split.train.records();
  if (split.test_medicines.size() != records.size()) {
    return Status::InvalidArgument(
        "split is inconsistent: test bag count != record count");
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    for (MedicineId m : split.test_medicines[r]) {
      const double probability = std::max(
          model.PredictiveProbability(records[r], m),
          options.min_probability);
      log_probability_sum += std::log(probability);
      ++mention_count;
    }
  }
  if (mention_count == 0) {
    return Status::InvalidArgument("split has no held-out mentions");
  }
  return std::exp(-log_probability_sum /
                  static_cast<double>(mention_count));
}

}  // namespace mic::medmodel
