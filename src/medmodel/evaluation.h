// Evaluation utilities for prescription-link models (§VIII-A-1):
// the 90/10 medicine holdout split and the perplexity measure (Eq. 11).

#ifndef MICTREND_MEDMODEL_EVALUATION_H_
#define MICTREND_MEDMODEL_EVALUATION_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "medmodel/link_model.h"
#include "mic/dataset.h"

namespace mic::medmodel {

/// A monthly dataset split for held-out evaluation: models are trained
/// on `train` and scored on the held-out medicine mentions, which stay
/// aligned with the train records by index (test_medicines[i] belongs to
/// train.records()[i]).
struct HoldoutSplit {
  MonthlyDataset train;
  std::vector<std::vector<MedicineId>> test_medicines;

  /// Total number of held-out mentions.
  std::size_t NumTestMentions() const {
    std::size_t total = 0;
    for (const auto& bag : test_medicines) total += bag.size();
    return total;
  }
};

/// Holds out each medicine mention independently with probability
/// `test_fraction` (paper: 0.1). Records keep their full disease bags;
/// records whose medicine bag would become empty keep one random
/// mention in train.
HoldoutSplit SplitMedicines(const MonthlyDataset& month,
                            double test_fraction, Rng& rng);

struct PerplexityOptions {
  /// Probabilities are clamped below at this value so that a medicine
  /// unseen in training contributes a large-but-finite penalty.
  double min_probability = 1e-12;
};

/// Perplexity (Eq. 11) of `model` on the held-out mentions of `split`.
/// Lower is better. Fails if the split has no test mentions.
Result<double> Perplexity(const LinkModel& model, const HoldoutSplit& split,
                          const PerplexityOptions& options = {});

}  // namespace mic::medmodel

#endif  // MICTREND_MEDMODEL_EVALUATION_H_
