// The paper's probabilistic medication model (§IV).
//
// Generative story per MIC record r:
//   d_rn ~ Multinomial(eta)                    (disease diagnosis)
//   z_rl ~ Multinomial(theta_r)                (medication target)
//   m_rl | z_rl = d ~ Multinomial(phi_d)       (medicine prescription)
// with theta_rd = N_rd / N_r fixed by Eq. (2). eta has the closed form
// Eq. (4); Phi is estimated by EM alternating the responsibilities
// q_rld (Eq. 6) and phi_dm (Eq. 5). The per-pair prescription counts of
// Eq. (7) are accumulated from the final responsibilities.

#ifndef MICTREND_MEDMODEL_MEDICATION_MODEL_H_
#define MICTREND_MEDMODEL_MEDICATION_MODEL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "medmodel/link_model.h"
#include "mic/dataset.h"

namespace mic::medmodel {

struct MedicationModelOptions {
  /// EM stops after this many iterations.
  int max_iterations = 100;
  /// ... or when the relative log-likelihood improvement drops below
  /// this tolerance.
  double tolerance = 1e-7;
  /// Additive smoothing on phi: every medicine observed in the month
  /// keeps at least this probability mass under every disease. Keeps
  /// held-out perplexity finite, mirroring standard topic-model practice.
  double phi_smoothing = 1e-3;
  /// Temporal coupling strength (the paper's §IX Topic-Tracking-style
  /// extension): when a previous month's model is passed to Fit, each
  /// disease's M step receives `prior_strength * phi_prev(d, m)` pseudo
  /// counts — a Dirichlet(alpha * phi_prev) MAP prior that stabilizes
  /// sparse months. 0 restores the paper's independent monthly fits.
  double prior_strength = 0.0;
  /// Incremental-update warm start: when a previous month's fitted
  /// model is passed to Fit, initialize each phi row from that model's
  /// phi (falling back to the cooccurrence value of Eq. 10 for pairs
  /// the prior has never seen) instead of starting from cooccurrence
  /// alone. EM still iterates to the same tolerance, so the result is
  /// convergence-equivalent to a cold fit — typically in far fewer
  /// iterations when consecutive months are similar. Ignored without a
  /// prior model.
  bool warm_start = false;
  // The E-step thread pool is passed via the ExecContext overload of
  // Fit; the deprecated `pool` field this struct used to carry is gone
  // (see docs/usage_cookbook.md for migration notes).
};

/// Fit diagnostics.
struct EmFitStats {
  int iterations = 0;
  double final_log_likelihood = 0.0;
  /// Log-likelihood after each EM iteration (monotonically
  /// non-decreasing up to numerical noise — tested as an invariant).
  std::vector<double> log_likelihood_trace;
};

/// The fitted model for one monthly dataset.
class MedicationModel : public LinkModel {
 public:
  /// Fits the model to one month with EM. Fails on empty input.
  /// `prior` (optional, not owned, may be null) is a previous month's
  /// fitted model used as a temporal prior when
  /// options.prior_strength > 0.
  static Result<std::unique_ptr<MedicationModel>> Fit(
      const MonthlyDataset& month,
      const MedicationModelOptions& options = {},
      const MedicationModel* prior = nullptr);

  /// ExecContext overload: context.pool dispatches the E-step record
  /// shards (null runs inline, bit-identical either way), and
  /// context.metrics receives the fit's counters (em.fits /
  /// em.iterations / em.records_sharded, the em.loglik_rel_improvement
  /// histogram) and E/M-step timers. The three-argument form is
  /// equivalent to passing an empty context.
  static Result<std::unique_ptr<MedicationModel>> Fit(
      const MonthlyDataset& month, const MedicationModelOptions& options,
      const MedicationModel* prior, const ExecContext& context);

  /// Serializes every fitted parameter — slot tables, eta, phi, the
  /// smoothing floor, pair counts, and the fit stats — into a snapshot
  /// payload for the incremental cache. Doubles are stored by bit
  /// pattern and maps in sorted key order, so Deserialize(Serialize())
  /// reconstructs a model whose every query (Eta/Phi/
  /// PredictiveProbability/MonthlyPairCounts) answers bit-identically.
  std::vector<std::uint8_t> Serialize() const;

  /// Rebuilds a model from a snapshot payload. Fails (rather than
  /// aborting) on truncated or malformed payloads, so a corrupt cache
  /// entry degrades to a cold refit.
  static Result<std::unique_ptr<MedicationModel>> Deserialize(
      const std::vector<std::uint8_t>& payload);

  /// eta_d: probability of disease d under the diagnosis distribution
  /// (Eq. 4); 0 for diseases absent from the month.
  double Eta(DiseaseId d) const;

  /// phi_dm: probability of medicine m given medication target d
  /// (Eq. 5, smoothed); 0 for diseases absent from the month.
  double Phi(DiseaseId d, MedicineId m) const;

  /// theta_rd = N_rd / N_r (Eq. 2).
  static double Theta(const MicRecord& record, DiseaseId d);

  // LinkModel interface.
  double PredictiveProbability(const MicRecord& record,
                               MedicineId m) const override;
  const PairCounts& MonthlyPairCounts() const override {
    return pair_counts_;
  }

  const EmFitStats& fit_stats() const { return stats_; }
  std::size_t num_diseases() const { return disease_slots_.size(); }
  std::size_t num_medicines() const { return medicine_slots_.size(); }

 private:
  MedicationModel() = default;

  // Month-local dense slot of an id (or npos when absent).
  std::size_t DiseaseSlot(DiseaseId d) const;
  std::size_t MedicineSlot(MedicineId m) const;

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  std::unordered_map<DiseaseId, std::size_t> disease_slots_;
  std::unordered_map<MedicineId, std::size_t> medicine_slots_;
  std::vector<double> eta_;  // by disease slot
  /// phi_[d_slot]: sparse medicine slot -> probability; mass missing from
  /// the map is spread uniformly over all month medicines via
  /// smoothing_floor_.
  std::vector<std::unordered_map<std::size_t, double>> phi_;
  double smoothing_floor_ = 0.0;  // per-medicine floor probability
  PairCounts pair_counts_;
  EmFitStats stats_;
};

}  // namespace mic::medmodel

#endif  // MICTREND_MEDMODEL_MEDICATION_MODEL_H_
