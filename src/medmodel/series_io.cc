#include "medmodel/series_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace mic::medmodel {
namespace {

constexpr char kHeader[] = "kind,disease,medicine,values";

std::string FormatValues(const std::vector<double>& values) {
  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ';';
    out << values[i];
  }
  return out.str();
}

}  // namespace

Status WriteSeriesCsv(const SeriesSet& series, const Catalog& catalog,
                      std::ostream& out) {
  out << kHeader << "\n";
  series.ForEachDisease([&](DiseaseId d, const std::vector<double>& values) {
    out << "disease," << catalog.diseases().Name(d) << ",-,"
        << FormatValues(values) << "\n";
  });
  series.ForEachMedicine(
      [&](MedicineId m, const std::vector<double>& values) {
        out << "medicine,-," << catalog.medicines().Name(m) << ","
            << FormatValues(values) << "\n";
      });
  series.ForEachPair([&](DiseaseId d, MedicineId m,
                         const std::vector<double>& values) {
    out << "prescription," << catalog.diseases().Name(d) << ","
        << catalog.medicines().Name(m) << "," << FormatValues(values)
        << "\n";
  });
  if (!out.good()) return Status::IoError("stream failure writing series");
  return Status::OK();
}

Status WriteSeriesCsvFile(const SeriesSet& series, const Catalog& catalog,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteSeriesCsv(series, catalog, out);
}

Result<SeriesSet> ReadSeriesCsv(std::istream& in, Catalog& catalog) {
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kHeader) {
    return Status::InvalidArgument(std::string("expected header '") +
                                   kHeader + "'");
  }
  int num_months = -1;
  SeriesSet series(0);
  std::size_t line_number = 1;
  bool first_row = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != 4) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected 4 fields");
    }
    std::vector<double> values;
    for (const std::string& token : Split(fields[3], ';')) {
      MIC_ASSIGN_OR_RETURN(double value, ParseDouble(token));
      values.push_back(value);
    }
    if (first_row) {
      num_months = static_cast<int>(values.size());
      series = SeriesSet(num_months);
      first_row = false;
    } else if (static_cast<int>(values.size()) != num_months) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": inconsistent series length");
    }

    // Each row restores one view verbatim, so write/read round-trips
    // exactly (the three views were already consistent when written).
    const std::string_view kind = StripWhitespace(fields[0]);
    if (kind == "prescription") {
      series.SetPrescriptionSeries(
          catalog.diseases().Intern(StripWhitespace(fields[1])),
          catalog.medicines().Intern(StripWhitespace(fields[2])),
          std::move(values));
    } else if (kind == "disease") {
      series.SetDiseaseSeries(
          catalog.diseases().Intern(StripWhitespace(fields[1])),
          std::move(values));
    } else if (kind == "medicine") {
      series.SetMedicineSeries(
          catalog.medicines().Intern(StripWhitespace(fields[2])),
          std::move(values));
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": unknown kind '" +
                                     std::string(kind) + "'");
    }
  }
  return series;
}

Result<SeriesSet> ReadSeriesCsvFile(const std::string& path,
                                    Catalog& catalog) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadSeriesCsv(in, catalog);
}

}  // namespace mic::medmodel
