// Common interface of the prescription-link models compared in the paper
// (§IV proposed latent model, §VIII cooccurrence and unigram baselines).

#ifndef MICTREND_MEDMODEL_LINK_MODEL_H_
#define MICTREND_MEDMODEL_LINK_MODEL_H_

#include "medmodel/pair_counts.h"
#include "mic/record.h"
#include "mic/types.h"

namespace mic::medmodel {

/// A model of how medicines are prescribed in one monthly MIC dataset.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Predictive probability P(m | r) that a (possibly held-out) medicine
  /// mention in record `r` is medicine `m`. Used by the perplexity
  /// evaluation (Eq. 11).
  virtual double PredictiveProbability(const MicRecord& record,
                                       MedicineId m) const = 0;

  /// Estimated prescription counts x_dm for this month (Eq. 7 for the
  /// proposed model; raw cooccurrence counts for the baseline).
  virtual const PairCounts& MonthlyPairCounts() const = 0;
};

}  // namespace mic::medmodel

#endif  // MICTREND_MEDMODEL_LINK_MODEL_H_
