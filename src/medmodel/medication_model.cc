#include "medmodel/medication_model.h"

#include <algorithm>
#include <cmath>

#include "cache/snapshot_io.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "obs/trace_log.h"
#include "runtime/thread_pool.h"

namespace mic::medmodel {
namespace {

// Month-local compiled record: disease slots with theta (Eq. 2) and
// medicine slots with multiplicities.
struct CompiledRecord {
  std::vector<std::pair<std::size_t, double>> diseases;
  std::vector<std::pair<std::size_t, std::uint32_t>> medicines;
};

// Records per E-step reduction chunk. The chunking is fixed — never a
// function of the thread count — and chunk partials are merged in chunk
// order, which is what makes the fit bit-identical at any parallelism.
constexpr std::size_t kEstepChunkRecords = 256;

// Per-chunk E-step accumulator: expected counts and the chunk's
// log-likelihood contribution.
struct EstepShard {
  std::vector<std::unordered_map<std::size_t, double>> next;
  double log_likelihood = 0.0;
};

}  // namespace

Result<std::unique_ptr<MedicationModel>> MedicationModel::Fit(
    const MonthlyDataset& month, const MedicationModelOptions& options,
    const MedicationModel* prior) {
  return Fit(month, options, prior, ExecContext{});
}

Result<std::unique_ptr<MedicationModel>> MedicationModel::Fit(
    const MonthlyDataset& month, const MedicationModelOptions& options,
    const MedicationModel* prior, const ExecContext& context) {
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.phi_smoothing < 0.0 || options.phi_smoothing >= 1.0) {
    return Status::InvalidArgument("phi_smoothing must be in [0, 1)");
  }
  if (options.prior_strength < 0.0) {
    return Status::InvalidArgument("prior_strength must be non-negative");
  }
  const bool use_prior = prior != nullptr && options.prior_strength > 0.0;
  const bool warm_start = prior != nullptr && options.warm_start;

  runtime::ThreadPool* pool = context.pool;
  obs::MetricsRegistry* metrics = context.metrics;
  obs::Span fit_span(context, "em_fit");
  obs::Increment(obs::GetCounter(metrics, "em.fits"));
  obs::Counter* iterations_counter = obs::GetCounter(metrics,
                                                     "em.iterations");
  obs::Counter* sharded_counter =
      obs::GetCounter(metrics, "em.records_sharded");
  // Relative per-iteration log-likelihood improvement, the EM
  // convergence driver (options.tolerance sits among these edges).
  obs::Histogram* improvement_histogram = obs::GetHistogram(
      metrics, "em.loglik_rel_improvement",
      {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1});
  obs::Timer* estep_timer = obs::GetTimer(metrics, "em.estep");
  obs::Timer* mstep_timer = obs::GetTimer(metrics, "em.mstep");

  auto model = std::unique_ptr<MedicationModel>(new MedicationModel());

  // Assign month-local dense slots.
  std::vector<DiseaseId> slot_to_disease;
  std::vector<MedicineId> slot_to_medicine;
  for (const MicRecord& record : month.records()) {
    for (const auto& entry : record.diseases) {
      if (model->disease_slots_.emplace(entry.id, slot_to_disease.size())
              .second) {
        slot_to_disease.push_back(entry.id);
      }
    }
    for (const auto& entry : record.medicines) {
      if (model->medicine_slots_.emplace(entry.id, slot_to_medicine.size())
              .second) {
        slot_to_medicine.push_back(entry.id);
      }
    }
  }
  const std::size_t num_diseases = slot_to_disease.size();
  const std::size_t num_medicines = slot_to_medicine.size();
  if (num_diseases == 0 || num_medicines == 0) {
    return Status::InvalidArgument(
        "month has no usable records (no diseases or no medicines)");
  }

  // Compile records; skip those missing either bag.
  std::vector<CompiledRecord> records;
  records.reserve(month.size());
  std::vector<double> disease_totals(num_diseases, 0.0);
  for (const MicRecord& record : month.records()) {
    if (record.diseases.empty() || record.medicines.empty()) continue;
    CompiledRecord compiled;
    const double n_r = static_cast<double>(record.TotalDiseaseMentions());
    for (const auto& entry : record.diseases) {
      const std::size_t slot = model->disease_slots_[entry.id];
      compiled.diseases.push_back(
          {slot, static_cast<double>(entry.count) / n_r});
      disease_totals[slot] += static_cast<double>(entry.count);
    }
    for (const auto& entry : record.medicines) {
      compiled.medicines.push_back(
          {model->medicine_slots_[entry.id], entry.count});
    }
    records.push_back(std::move(compiled));
  }
  if (records.empty()) {
    return Status::InvalidArgument("no record has both bags non-empty");
  }

  // eta (Eq. 4): normalized disease mention totals.
  double disease_grand_total = 0.0;
  for (double total : disease_totals) disease_grand_total += total;
  model->eta_.resize(num_diseases);
  for (std::size_t d = 0; d < num_diseases; ++d) {
    model->eta_[d] = disease_totals[d] / disease_grand_total;
  }

  // Initialize phi from cooccurrence counts (Eq. 10): every medicine that
  // ever shares a record with disease d gets positive initial mass, so
  // all responsibilities are well defined from the first E step.
  std::vector<std::unordered_map<std::size_t, double>> phi(num_diseases);
  for (const CompiledRecord& record : records) {
    for (const auto& [d, theta] : record.diseases) {
      for (const auto& [m, count] : record.medicines) {
        phi[d][m] += theta * static_cast<double>(count);
      }
    }
  }
  for (auto& row : phi) {
    double total = 0.0;
    for (const auto& [m, value] : row) total += value;
    if (total > 0.0) {
      for (auto& [m, value] : row) value /= total;
    }
  }

  // Warm start (incremental update): overwrite the cooccurrence seed
  // with the previous month's converged phi wherever the prior has
  // support, keeping the cooccurrence value for pairs new this month so
  // every responsibility stays well defined, then renormalize. The
  // support set is unchanged, so EM explores the same parameter space
  // and converges to the same tolerance — just from a closer start.
  if (warm_start) {
    for (std::size_t d = 0; d < num_diseases; ++d) {
      auto& row = phi[d];
      double total = 0.0;
      for (auto& [m, value] : row) {
        const double prior_phi =
            prior->Phi(slot_to_disease[d], slot_to_medicine[m]);
        if (prior_phi > 0.0) value = prior_phi;
        total += value;
      }
      if (total > 0.0) {
        for (auto& [m, value] : row) value /= total;
      }
    }
  }

  // EM (Eqs. 5-6). The E step shards the record loop into fixed-size
  // chunks (parallel when context.pool is set); each chunk accumulates
  // responsibilities into its own shard, and the shards are merged into
  // `next` in chunk order so the reduction is deterministic.
  const std::size_t num_chunks =
      (records.size() + kEstepChunkRecords - 1) / kEstepChunkRecords;
  std::vector<EstepShard> shards(num_chunks);
  for (EstepShard& shard : shards) shard.next.resize(num_diseases);
  std::vector<std::unordered_map<std::size_t, double>> next(num_diseases);
  double previous_log_likelihood = -std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    obs::Increment(iterations_counter);
    obs::Increment(sharded_counter, records.size());
    double log_likelihood = 0.0;
    {
      obs::ScopedTimer estep_scope(estep_timer, context.trace, "estep");
      MIC_RETURN_IF_ERROR(runtime::ParallelFor(
          pool, 0, records.size(), kEstepChunkRecords,
          obs::TraceChunks(
              context.trace, "em-estep",
              [&records, &phi, &shards](std::size_t chunk_begin,
                                        std::size_t chunk_end,
                                        std::size_t chunk_index) {
            EstepShard& shard = shards[chunk_index];
            shard.log_likelihood = 0.0;
            for (auto& row : shard.next) row.clear();
            std::vector<double> responsibilities;
            for (std::size_t r = chunk_begin; r < chunk_end; ++r) {
              const CompiledRecord& record = records[r];
              for (const auto& [m, count] : record.medicines) {
                responsibilities.clear();
                double denominator = 0.0;
                for (const auto& [d, theta] : record.diseases) {
                  auto it = phi[d].find(m);
                  const double weight =
                      theta * (it == phi[d].end() ? 0.0 : it->second);
                  responsibilities.push_back(weight);
                  denominator += weight;
                }
                if (denominator <= 0.0) continue;  // No support.
                shard.log_likelihood +=
                    static_cast<double>(count) * std::log(denominator);
                for (std::size_t i = 0; i < record.diseases.size(); ++i) {
                  const double q = responsibilities[i] / denominator;
                  shard.next[record.diseases[i].first][m] +=
                      static_cast<double>(count) * q;
                }
              }
            }
            return Status::OK();
              }),
          "em-estep"));

      for (auto& row : next) row.clear();
      for (const EstepShard& shard : shards) {
        log_likelihood += shard.log_likelihood;
        for (std::size_t d = 0; d < num_diseases; ++d) {
          for (const auto& [m, value] : shard.next[d]) {
            next[d][m] += value;
          }
        }
      }
    }

    // M step: normalize expected counts into phi; with a temporal
    // prior, each pair receives alpha * phi_prev(d, m) pseudo counts
    // (Topic-Tracking MAP update).
    {
      obs::ScopedTimer mstep_scope(mstep_timer, context.trace, "mstep");
      for (std::size_t d = 0; d < num_diseases; ++d) {
        double total = 0.0;
        if (use_prior) {
          for (auto& [m, value] : next[d]) {
            value += options.prior_strength *
                     prior->Phi(slot_to_disease[d], slot_to_medicine[m]);
          }
        }
        for (const auto& [m, value] : next[d]) total += value;
        if (total > 0.0) {
          phi[d].clear();
          for (const auto& [m, value] : next[d]) phi[d][m] = value / total;
        }
      }
    }

    model->stats_.log_likelihood_trace.push_back(log_likelihood);
    model->stats_.iterations = iteration + 1;
    const double improvement = log_likelihood - previous_log_likelihood;
    previous_log_likelihood = log_likelihood;
    if (iteration > 0) {
      if (std::fabs(log_likelihood) > 0.0) {
        obs::Observe(improvement_histogram,
                     improvement / std::fabs(log_likelihood));
      }
      if (improvement < options.tolerance * std::fabs(log_likelihood)) {
        break;
      }
    }
  }
  model->stats_.final_log_likelihood = previous_log_likelihood;

  // Final responsibilities accumulate the per-pair prescription counts
  // x_dm (Eq. 7), sharded over the same fixed chunks as the E step and
  // merged in chunk order.
  std::vector<PairCounts> count_shards(num_chunks);
  obs::Increment(sharded_counter, records.size());
  MIC_RETURN_IF_ERROR(runtime::ParallelFor(
      pool, 0, records.size(), kEstepChunkRecords,
      obs::TraceChunks(
          context.trace, "em-pair-counts",
          [&records, &phi, &count_shards, &slot_to_disease,
           &slot_to_medicine](std::size_t chunk_begin,
                              std::size_t chunk_end,
                              std::size_t chunk_index) {
        PairCounts& local = count_shards[chunk_index];
        for (std::size_t r = chunk_begin; r < chunk_end; ++r) {
          const CompiledRecord& record = records[r];
          for (const auto& [m, count] : record.medicines) {
            double denominator = 0.0;
            for (const auto& [d, theta] : record.diseases) {
              auto it = phi[d].find(m);
              if (it != phi[d].end()) denominator += theta * it->second;
            }
            if (denominator <= 0.0) continue;
            for (const auto& [d, theta] : record.diseases) {
              auto it = phi[d].find(m);
              if (it == phi[d].end()) continue;
              const double q = theta * it->second / denominator;
              local.Add(slot_to_disease[d], slot_to_medicine[m],
                        static_cast<double>(count) * q);
            }
          }
        }
        return Status::OK();
          }),
      "em-pair-counts"));
  for (const PairCounts& local : count_shards) {
    local.ForEach([&model](DiseaseId d, MedicineId m, double value) {
      model->pair_counts_.Add(d, m, value);
    });
  }

  // Store smoothed phi: a fraction `phi_smoothing` of each disease's
  // mass is spread uniformly over the month's medicines.
  model->smoothing_floor_ =
      options.phi_smoothing / static_cast<double>(num_medicines);
  const double keep = 1.0 - options.phi_smoothing;
  model->phi_.resize(num_diseases);
  for (std::size_t d = 0; d < num_diseases; ++d) {
    for (const auto& [m, value] : phi[d]) {
      model->phi_[d][m] = keep * value;
    }
  }

  return model;
}

std::vector<std::uint8_t> MedicationModel::Serialize() const {
  cache::SnapshotWriter writer;
  const std::size_t num_diseases = eta_.size();
  writer.PutU64(num_diseases);
  writer.PutU64(medicine_slots_.size());

  // Slot tables in id order (unordered_map iteration order is not
  // stable across processes).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> slots;
  slots.reserve(disease_slots_.size());
  for (const auto& [id, slot] : disease_slots_) {
    slots.push_back({id.value(), slot});
  }
  std::sort(slots.begin(), slots.end());
  for (const auto& [id, slot] : slots) {
    writer.PutU32(id);
    writer.PutU64(slot);
  }
  slots.clear();
  for (const auto& [id, slot] : medicine_slots_) {
    slots.push_back({id.value(), slot});
  }
  std::sort(slots.begin(), slots.end());
  for (const auto& [id, slot] : slots) {
    writer.PutU32(id);
    writer.PutU64(slot);
  }

  for (double value : eta_) writer.PutDouble(value);

  std::vector<std::pair<std::uint64_t, double>> row;
  for (std::size_t d = 0; d < num_diseases; ++d) {
    row.assign(phi_[d].begin(), phi_[d].end());
    std::sort(row.begin(), row.end());
    writer.PutU64(row.size());
    for (const auto& [m, value] : row) {
      writer.PutU64(m);
      writer.PutDouble(value);
    }
  }
  writer.PutDouble(smoothing_floor_);

  row.assign(pair_counts_.raw().begin(), pair_counts_.raw().end());
  std::sort(row.begin(), row.end());
  writer.PutU64(row.size());
  for (const auto& [key, value] : row) {
    writer.PutU64(key);
    writer.PutDouble(value);
  }

  writer.PutI64(stats_.iterations);
  writer.PutDouble(stats_.final_log_likelihood);
  writer.PutU64(stats_.log_likelihood_trace.size());
  for (double value : stats_.log_likelihood_trace) writer.PutDouble(value);
  return writer.Take();
}

Result<std::unique_ptr<MedicationModel>> MedicationModel::Deserialize(
    const std::vector<std::uint8_t>& payload) {
  cache::SnapshotReader reader(payload);
  auto model = std::unique_ptr<MedicationModel>(new MedicationModel());

  MIC_ASSIGN_OR_RETURN(const std::uint64_t num_diseases, reader.U64());
  MIC_ASSIGN_OR_RETURN(const std::uint64_t num_medicines, reader.U64());
  for (std::uint64_t i = 0; i < num_diseases; ++i) {
    MIC_ASSIGN_OR_RETURN(const std::uint32_t id, reader.U32());
    MIC_ASSIGN_OR_RETURN(const std::uint64_t slot, reader.U64());
    if (slot >= num_diseases) {
      return Status::FailedPrecondition("disease slot out of range");
    }
    model->disease_slots_.emplace(DiseaseId(id), slot);
  }
  for (std::uint64_t i = 0; i < num_medicines; ++i) {
    MIC_ASSIGN_OR_RETURN(const std::uint32_t id, reader.U32());
    MIC_ASSIGN_OR_RETURN(const std::uint64_t slot, reader.U64());
    if (slot >= num_medicines) {
      return Status::FailedPrecondition("medicine slot out of range");
    }
    model->medicine_slots_.emplace(MedicineId(id), slot);
  }
  if (model->disease_slots_.size() != num_diseases ||
      model->medicine_slots_.size() != num_medicines) {
    return Status::FailedPrecondition("duplicate ids in slot table");
  }

  model->eta_.resize(num_diseases);
  for (std::uint64_t d = 0; d < num_diseases; ++d) {
    MIC_ASSIGN_OR_RETURN(model->eta_[d], reader.Double());
  }

  model->phi_.resize(num_diseases);
  for (std::uint64_t d = 0; d < num_diseases; ++d) {
    MIC_ASSIGN_OR_RETURN(const std::uint64_t row_size, reader.U64());
    for (std::uint64_t i = 0; i < row_size; ++i) {
      MIC_ASSIGN_OR_RETURN(const std::uint64_t m, reader.U64());
      MIC_ASSIGN_OR_RETURN(const double value, reader.Double());
      if (m >= num_medicines) {
        return Status::FailedPrecondition("phi medicine slot out of range");
      }
      model->phi_[d][m] = value;
    }
  }
  MIC_ASSIGN_OR_RETURN(model->smoothing_floor_, reader.Double());

  MIC_ASSIGN_OR_RETURN(const std::uint64_t num_pairs, reader.U64());
  for (std::uint64_t i = 0; i < num_pairs; ++i) {
    MIC_ASSIGN_OR_RETURN(const std::uint64_t key, reader.U64());
    MIC_ASSIGN_OR_RETURN(const double value, reader.Double());
    model->pair_counts_.Add(PairDisease(key), PairMedicine(key), value);
  }

  MIC_ASSIGN_OR_RETURN(const std::int64_t iterations, reader.I64());
  model->stats_.iterations = static_cast<int>(iterations);
  MIC_ASSIGN_OR_RETURN(model->stats_.final_log_likelihood,
                       reader.Double());
  MIC_ASSIGN_OR_RETURN(const std::uint64_t trace_size, reader.U64());
  model->stats_.log_likelihood_trace.resize(trace_size);
  for (std::uint64_t i = 0; i < trace_size; ++i) {
    MIC_ASSIGN_OR_RETURN(model->stats_.log_likelihood_trace[i],
                         reader.Double());
  }
  if (!reader.AtEnd()) {
    return Status::FailedPrecondition(
        "trailing bytes after medication-model snapshot");
  }
  return model;
}

std::size_t MedicationModel::DiseaseSlot(DiseaseId d) const {
  auto it = disease_slots_.find(d);
  return it == disease_slots_.end() ? kNoSlot : it->second;
}

std::size_t MedicationModel::MedicineSlot(MedicineId m) const {
  auto it = medicine_slots_.find(m);
  return it == medicine_slots_.end() ? kNoSlot : it->second;
}

double MedicationModel::Eta(DiseaseId d) const {
  const std::size_t slot = DiseaseSlot(d);
  return slot == kNoSlot ? 0.0 : eta_[slot];
}

double MedicationModel::Phi(DiseaseId d, MedicineId m) const {
  const std::size_t d_slot = DiseaseSlot(d);
  const std::size_t m_slot = MedicineSlot(m);
  if (d_slot == kNoSlot || m_slot == kNoSlot) return 0.0;
  auto it = phi_[d_slot].find(m_slot);
  const double base = it == phi_[d_slot].end() ? 0.0 : it->second;
  return base + smoothing_floor_;
}

double MedicationModel::Theta(const MicRecord& record, DiseaseId d) {
  const double n_r = static_cast<double>(record.TotalDiseaseMentions());
  if (n_r == 0.0) return 0.0;
  for (const auto& entry : record.diseases) {
    if (entry.id == d) return static_cast<double>(entry.count) / n_r;
  }
  return 0.0;
}

double MedicationModel::PredictiveProbability(const MicRecord& record,
                                              MedicineId m) const {
  const double n_r = static_cast<double>(record.TotalDiseaseMentions());
  if (n_r == 0.0) return 0.0;
  double probability = 0.0;
  for (const auto& entry : record.diseases) {
    const double theta = static_cast<double>(entry.count) / n_r;
    probability += theta * Phi(entry.id, m);
  }
  return probability;
}

}  // namespace mic::medmodel
