#include "medmodel/medication_model.h"

#include <cmath>

#include "common/logging.h"
#include "obs/trace.h"
#include "obs/trace_log.h"

namespace mic::medmodel {
namespace {

// Month-local compiled record: disease slots with theta (Eq. 2) and
// medicine slots with multiplicities.
struct CompiledRecord {
  std::vector<std::pair<std::size_t, double>> diseases;
  std::vector<std::pair<std::size_t, std::uint32_t>> medicines;
};

// Records per E-step reduction chunk. The chunking is fixed — never a
// function of the thread count — and chunk partials are merged in chunk
// order, which is what makes the fit bit-identical at any parallelism.
constexpr std::size_t kEstepChunkRecords = 256;

// Per-chunk E-step accumulator: expected counts and the chunk's
// log-likelihood contribution.
struct EstepShard {
  std::vector<std::unordered_map<std::size_t, double>> next;
  double log_likelihood = 0.0;
};

}  // namespace

Result<std::unique_ptr<MedicationModel>> MedicationModel::Fit(
    const MonthlyDataset& month, const MedicationModelOptions& options,
    const MedicationModel* prior) {
  return Fit(month, options, prior, ExecContext{});
}

Result<std::unique_ptr<MedicationModel>> MedicationModel::Fit(
    const MonthlyDataset& month, const MedicationModelOptions& options,
    const MedicationModel* prior, const ExecContext& context) {
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.phi_smoothing < 0.0 || options.phi_smoothing >= 1.0) {
    return Status::InvalidArgument("phi_smoothing must be in [0, 1)");
  }
  if (options.prior_strength < 0.0) {
    return Status::InvalidArgument("prior_strength must be non-negative");
  }
  const bool use_prior = prior != nullptr && options.prior_strength > 0.0;

  runtime::ThreadPool* pool = EffectivePool(context, options.pool);
  obs::MetricsRegistry* metrics = context.metrics;
  obs::Span fit_span(context, "em_fit");
  obs::Increment(obs::GetCounter(metrics, "em.fits"));
  obs::Counter* iterations_counter = obs::GetCounter(metrics,
                                                     "em.iterations");
  obs::Counter* sharded_counter =
      obs::GetCounter(metrics, "em.records_sharded");
  // Relative per-iteration log-likelihood improvement, the EM
  // convergence driver (options.tolerance sits among these edges).
  obs::Histogram* improvement_histogram = obs::GetHistogram(
      metrics, "em.loglik_rel_improvement",
      {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1});
  obs::Timer* estep_timer = obs::GetTimer(metrics, "em.estep");
  obs::Timer* mstep_timer = obs::GetTimer(metrics, "em.mstep");

  auto model = std::unique_ptr<MedicationModel>(new MedicationModel());

  // Assign month-local dense slots.
  std::vector<DiseaseId> slot_to_disease;
  std::vector<MedicineId> slot_to_medicine;
  for (const MicRecord& record : month.records()) {
    for (const auto& entry : record.diseases) {
      if (model->disease_slots_.emplace(entry.id, slot_to_disease.size())
              .second) {
        slot_to_disease.push_back(entry.id);
      }
    }
    for (const auto& entry : record.medicines) {
      if (model->medicine_slots_.emplace(entry.id, slot_to_medicine.size())
              .second) {
        slot_to_medicine.push_back(entry.id);
      }
    }
  }
  const std::size_t num_diseases = slot_to_disease.size();
  const std::size_t num_medicines = slot_to_medicine.size();
  if (num_diseases == 0 || num_medicines == 0) {
    return Status::InvalidArgument(
        "month has no usable records (no diseases or no medicines)");
  }

  // Compile records; skip those missing either bag.
  std::vector<CompiledRecord> records;
  records.reserve(month.size());
  std::vector<double> disease_totals(num_diseases, 0.0);
  for (const MicRecord& record : month.records()) {
    if (record.diseases.empty() || record.medicines.empty()) continue;
    CompiledRecord compiled;
    const double n_r = static_cast<double>(record.TotalDiseaseMentions());
    for (const auto& entry : record.diseases) {
      const std::size_t slot = model->disease_slots_[entry.id];
      compiled.diseases.push_back(
          {slot, static_cast<double>(entry.count) / n_r});
      disease_totals[slot] += static_cast<double>(entry.count);
    }
    for (const auto& entry : record.medicines) {
      compiled.medicines.push_back(
          {model->medicine_slots_[entry.id], entry.count});
    }
    records.push_back(std::move(compiled));
  }
  if (records.empty()) {
    return Status::InvalidArgument("no record has both bags non-empty");
  }

  // eta (Eq. 4): normalized disease mention totals.
  double disease_grand_total = 0.0;
  for (double total : disease_totals) disease_grand_total += total;
  model->eta_.resize(num_diseases);
  for (std::size_t d = 0; d < num_diseases; ++d) {
    model->eta_[d] = disease_totals[d] / disease_grand_total;
  }

  // Initialize phi from cooccurrence counts (Eq. 10): every medicine that
  // ever shares a record with disease d gets positive initial mass, so
  // all responsibilities are well defined from the first E step.
  std::vector<std::unordered_map<std::size_t, double>> phi(num_diseases);
  for (const CompiledRecord& record : records) {
    for (const auto& [d, theta] : record.diseases) {
      for (const auto& [m, count] : record.medicines) {
        phi[d][m] += theta * static_cast<double>(count);
      }
    }
  }
  for (auto& row : phi) {
    double total = 0.0;
    for (const auto& [m, value] : row) total += value;
    if (total > 0.0) {
      for (auto& [m, value] : row) value /= total;
    }
  }

  // EM (Eqs. 5-6). The E step shards the record loop into fixed-size
  // chunks (parallel when options.pool is set); each chunk accumulates
  // responsibilities into its own shard, and the shards are merged into
  // `next` in chunk order so the reduction is deterministic.
  const std::size_t num_chunks =
      (records.size() + kEstepChunkRecords - 1) / kEstepChunkRecords;
  std::vector<EstepShard> shards(num_chunks);
  for (EstepShard& shard : shards) shard.next.resize(num_diseases);
  std::vector<std::unordered_map<std::size_t, double>> next(num_diseases);
  double previous_log_likelihood = -std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    obs::Increment(iterations_counter);
    obs::Increment(sharded_counter, records.size());
    double log_likelihood = 0.0;
    {
      obs::ScopedTimer estep_scope(estep_timer, context.trace, "estep");
      MIC_RETURN_IF_ERROR(runtime::ParallelFor(
          pool, 0, records.size(), kEstepChunkRecords,
          obs::TraceChunks(
              context.trace, "em-estep",
              [&records, &phi, &shards](std::size_t chunk_begin,
                                        std::size_t chunk_end,
                                        std::size_t chunk_index) {
            EstepShard& shard = shards[chunk_index];
            shard.log_likelihood = 0.0;
            for (auto& row : shard.next) row.clear();
            std::vector<double> responsibilities;
            for (std::size_t r = chunk_begin; r < chunk_end; ++r) {
              const CompiledRecord& record = records[r];
              for (const auto& [m, count] : record.medicines) {
                responsibilities.clear();
                double denominator = 0.0;
                for (const auto& [d, theta] : record.diseases) {
                  auto it = phi[d].find(m);
                  const double weight =
                      theta * (it == phi[d].end() ? 0.0 : it->second);
                  responsibilities.push_back(weight);
                  denominator += weight;
                }
                if (denominator <= 0.0) continue;  // No support.
                shard.log_likelihood +=
                    static_cast<double>(count) * std::log(denominator);
                for (std::size_t i = 0; i < record.diseases.size(); ++i) {
                  const double q = responsibilities[i] / denominator;
                  shard.next[record.diseases[i].first][m] +=
                      static_cast<double>(count) * q;
                }
              }
            }
            return Status::OK();
              }),
          "em-estep"));

      for (auto& row : next) row.clear();
      for (const EstepShard& shard : shards) {
        log_likelihood += shard.log_likelihood;
        for (std::size_t d = 0; d < num_diseases; ++d) {
          for (const auto& [m, value] : shard.next[d]) {
            next[d][m] += value;
          }
        }
      }
    }

    // M step: normalize expected counts into phi; with a temporal
    // prior, each pair receives alpha * phi_prev(d, m) pseudo counts
    // (Topic-Tracking MAP update).
    {
      obs::ScopedTimer mstep_scope(mstep_timer, context.trace, "mstep");
      for (std::size_t d = 0; d < num_diseases; ++d) {
        double total = 0.0;
        if (use_prior) {
          for (auto& [m, value] : next[d]) {
            value += options.prior_strength *
                     prior->Phi(slot_to_disease[d], slot_to_medicine[m]);
          }
        }
        for (const auto& [m, value] : next[d]) total += value;
        if (total > 0.0) {
          phi[d].clear();
          for (const auto& [m, value] : next[d]) phi[d][m] = value / total;
        }
      }
    }

    model->stats_.log_likelihood_trace.push_back(log_likelihood);
    model->stats_.iterations = iteration + 1;
    const double improvement = log_likelihood - previous_log_likelihood;
    previous_log_likelihood = log_likelihood;
    if (iteration > 0) {
      if (std::fabs(log_likelihood) > 0.0) {
        obs::Observe(improvement_histogram,
                     improvement / std::fabs(log_likelihood));
      }
      if (improvement < options.tolerance * std::fabs(log_likelihood)) {
        break;
      }
    }
  }
  model->stats_.final_log_likelihood = previous_log_likelihood;

  // Final responsibilities accumulate the per-pair prescription counts
  // x_dm (Eq. 7), sharded over the same fixed chunks as the E step and
  // merged in chunk order.
  std::vector<PairCounts> count_shards(num_chunks);
  obs::Increment(sharded_counter, records.size());
  MIC_RETURN_IF_ERROR(runtime::ParallelFor(
      pool, 0, records.size(), kEstepChunkRecords,
      obs::TraceChunks(
          context.trace, "em-pair-counts",
          [&records, &phi, &count_shards, &slot_to_disease,
           &slot_to_medicine](std::size_t chunk_begin,
                              std::size_t chunk_end,
                              std::size_t chunk_index) {
        PairCounts& local = count_shards[chunk_index];
        for (std::size_t r = chunk_begin; r < chunk_end; ++r) {
          const CompiledRecord& record = records[r];
          for (const auto& [m, count] : record.medicines) {
            double denominator = 0.0;
            for (const auto& [d, theta] : record.diseases) {
              auto it = phi[d].find(m);
              if (it != phi[d].end()) denominator += theta * it->second;
            }
            if (denominator <= 0.0) continue;
            for (const auto& [d, theta] : record.diseases) {
              auto it = phi[d].find(m);
              if (it == phi[d].end()) continue;
              const double q = theta * it->second / denominator;
              local.Add(slot_to_disease[d], slot_to_medicine[m],
                        static_cast<double>(count) * q);
            }
          }
        }
        return Status::OK();
          }),
      "em-pair-counts"));
  for (const PairCounts& local : count_shards) {
    local.ForEach([&model](DiseaseId d, MedicineId m, double value) {
      model->pair_counts_.Add(d, m, value);
    });
  }

  // Store smoothed phi: a fraction `phi_smoothing` of each disease's
  // mass is spread uniformly over the month's medicines.
  model->smoothing_floor_ =
      options.phi_smoothing / static_cast<double>(num_medicines);
  const double keep = 1.0 - options.phi_smoothing;
  model->phi_.resize(num_diseases);
  for (std::size_t d = 0; d < num_diseases; ++d) {
    for (const auto& [m, value] : phi[d]) {
      model->phi_[d][m] = keep * value;
    }
  }

  return model;
}

std::size_t MedicationModel::DiseaseSlot(DiseaseId d) const {
  auto it = disease_slots_.find(d);
  return it == disease_slots_.end() ? kNoSlot : it->second;
}

std::size_t MedicationModel::MedicineSlot(MedicineId m) const {
  auto it = medicine_slots_.find(m);
  return it == medicine_slots_.end() ? kNoSlot : it->second;
}

double MedicationModel::Eta(DiseaseId d) const {
  const std::size_t slot = DiseaseSlot(d);
  return slot == kNoSlot ? 0.0 : eta_[slot];
}

double MedicationModel::Phi(DiseaseId d, MedicineId m) const {
  const std::size_t d_slot = DiseaseSlot(d);
  const std::size_t m_slot = MedicineSlot(m);
  if (d_slot == kNoSlot || m_slot == kNoSlot) return 0.0;
  auto it = phi_[d_slot].find(m_slot);
  const double base = it == phi_[d_slot].end() ? 0.0 : it->second;
  return base + smoothing_floor_;
}

double MedicationModel::Theta(const MicRecord& record, DiseaseId d) {
  const double n_r = static_cast<double>(record.TotalDiseaseMentions());
  if (n_r == 0.0) return 0.0;
  for (const auto& entry : record.diseases) {
    if (entry.id == d) return static_cast<double>(entry.count) / n_r;
  }
  return 0.0;
}

double MedicationModel::PredictiveProbability(const MicRecord& record,
                                              MedicineId m) const {
  const double n_r = static_cast<double>(record.TotalDiseaseMentions());
  if (n_r == 0.0) return 0.0;
  double probability = 0.0;
  for (const auto& entry : record.diseases) {
    const double theta = static_cast<double>(entry.count) / n_r;
    probability += theta * Phi(entry.id, m);
  }
  return probability;
}

}  // namespace mic::medmodel
