// Sparse (disease, medicine) -> value accumulator shared by the
// medication models and the time-series reproduction step.

#ifndef MICTREND_MEDMODEL_PAIR_COUNTS_H_
#define MICTREND_MEDMODEL_PAIR_COUNTS_H_

#include <cstdint>
#include <unordered_map>

#include "mic/types.h"

namespace mic::medmodel {

/// Packs a (disease, medicine) pair into one 64-bit key.
inline std::uint64_t PairKey(DiseaseId d, MedicineId m) {
  return (static_cast<std::uint64_t>(d.value()) << 32) |
         static_cast<std::uint64_t>(m.value());
}

inline DiseaseId PairDisease(std::uint64_t key) {
  return DiseaseId(static_cast<std::uint32_t>(key >> 32));
}

inline MedicineId PairMedicine(std::uint64_t key) {
  return MedicineId(static_cast<std::uint32_t>(key & 0xFFFFFFFFull));
}

/// Sparse accumulation of per-pair values (e.g. x_dm for one month).
class PairCounts {
 public:
  void Add(DiseaseId d, MedicineId m, double value) {
    counts_[PairKey(d, m)] += value;
  }

  /// Value for a pair (0 when absent).
  double Get(DiseaseId d, MedicineId m) const {
    auto it = counts_.find(PairKey(d, m));
    return it == counts_.end() ? 0.0 : it->second;
  }

  std::size_t size() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  /// Visits every pair: fn(DiseaseId, MedicineId, double).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, value] : counts_) {
      fn(PairDisease(key), PairMedicine(key), value);
    }
  }

  const std::unordered_map<std::uint64_t, double>& raw() const {
    return counts_;
  }

 private:
  std::unordered_map<std::uint64_t, double> counts_;
};

}  // namespace mic::medmodel

#endif  // MICTREND_MEDMODEL_PAIR_COUNTS_H_
