// CSV serialization of reproduced series sets, used by the CLI to
// decouple the (expensive) reproduction step from downstream analysis.
//
// Format (header required):
//   kind,disease,medicine,values
// with kind in {disease, medicine, prescription}, names from the
// catalog ("-" when not applicable), and values ';'-separated.

#ifndef MICTREND_MEDMODEL_SERIES_IO_H_
#define MICTREND_MEDMODEL_SERIES_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/catalog.h"

namespace mic::medmodel {

Status WriteSeriesCsv(const SeriesSet& series, const Catalog& catalog,
                      std::ostream& out);
Status WriteSeriesCsvFile(const SeriesSet& series, const Catalog& catalog,
                          const std::string& path);

/// Reads a series set, interning names into `catalog`. All rows must
/// have the same number of values.
Result<SeriesSet> ReadSeriesCsv(std::istream& in, Catalog& catalog);
Result<SeriesSet> ReadSeriesCsvFile(const std::string& path,
                                    Catalog& catalog);

}  // namespace mic::medmodel

#endif  // MICTREND_MEDMODEL_SERIES_IO_H_
