// Baseline prescription-link models from the paper's evaluation (§VIII-A):
// Cooccurrence (Eq. 10) and the medicine Unigram language model.

#ifndef MICTREND_MEDMODEL_BASELINES_H_
#define MICTREND_MEDMODEL_BASELINES_H_

#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "medmodel/link_model.h"
#include "mic/dataset.h"

namespace mic::medmodel {

struct BaselineOptions {
  /// Additive smoothing mass (same role as
  /// MedicationModelOptions::phi_smoothing).
  double smoothing = 1e-3;
};

/// Eq. (10): phi_dm proportional to record-level disease-medicine
/// cooccurrence counts; its MonthlyPairCounts() are the raw cooccurrence
/// counts themselves (the "straightforward approach" of Fig. 2a).
class CooccurrenceModel : public LinkModel {
 public:
  static Result<std::unique_ptr<CooccurrenceModel>> Fit(
      const MonthlyDataset& month, const BaselineOptions& options = {});

  /// Smoothed phi_dm (0 for unseen disease/medicine).
  double Phi(DiseaseId d, MedicineId m) const;

  double PredictiveProbability(const MicRecord& record,
                               MedicineId m) const override;
  const PairCounts& MonthlyPairCounts() const override {
    return cooccurrence_counts_;
  }

 private:
  CooccurrenceModel() = default;

  /// phi rows keyed by disease; values keyed by medicine.
  std::unordered_map<DiseaseId,
                     std::unordered_map<MedicineId, double>>
      phi_;
  double smoothing_floor_ = 0.0;
  std::size_t num_medicines_ = 0;
  PairCounts cooccurrence_counts_;
};

/// Medicine unigram model: P(m) is the month-level relative frequency,
/// ignoring diseases entirely.
class UnigramModel : public LinkModel {
 public:
  static Result<std::unique_ptr<UnigramModel>> Fit(
      const MonthlyDataset& month, const BaselineOptions& options = {});

  double Probability(MedicineId m) const;

  double PredictiveProbability(const MicRecord& record,
                               MedicineId m) const override;
  /// Unigram has no notion of per-pair counts; returns an empty table.
  const PairCounts& MonthlyPairCounts() const override { return empty_; }

 private:
  UnigramModel() = default;

  std::unordered_map<MedicineId, double> probabilities_;
  double smoothing_floor_ = 0.0;
  PairCounts empty_;
};

}  // namespace mic::medmodel

#endif  // MICTREND_MEDMODEL_BASELINES_H_
