// Time-series reproduction (§IV-D): fits a link model to every monthly
// dataset and assembles the monthly prescription counts x_dmt (Eq. 7)
// plus the derived disease series x_dt and medicine series x_mt (Eq. 8).

#ifndef MICTREND_MEDMODEL_TIMESERIES_H_
#define MICTREND_MEDMODEL_TIMESERIES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "medmodel/medication_model.h"
#include "medmodel/pair_counts.h"
#include "mic/dataset.h"
#include "mic/filter.h"

namespace mic::medmodel {

/// The reproduced monthly series for one corpus.
class SeriesSet {
 public:
  explicit SeriesSet(int num_months = 0) : num_months_(num_months) {}

  int num_months() const { return num_months_; }

  /// Prescription series for a pair; all-zero vector when absent.
  std::vector<double> Prescription(DiseaseId d, MedicineId m) const;
  /// Disease series x_dt (Eq. 8); all-zero when absent.
  std::vector<double> Disease(DiseaseId d) const;
  /// Medicine series x_mt (Eq. 8); all-zero when absent.
  std::vector<double> Medicine(MedicineId m) const;

  std::size_t num_pairs() const { return pairs_.size(); }
  std::size_t num_diseases() const { return diseases_.size(); }
  std::size_t num_medicines() const { return medicines_.size(); }

  /// Visits series: fn(key..., const std::vector<double>&).
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    for (const auto& [key, series] : pairs_) {
      fn(PairDisease(key), PairMedicine(key), series);
    }
  }
  template <typename Fn>
  void ForEachDisease(Fn&& fn) const {
    for (const auto& [id, series] : diseases_) fn(id, series);
  }
  template <typename Fn>
  void ForEachMedicine(Fn&& fn) const {
    for (const auto& [id, series] : medicines_) fn(id, series);
  }

  /// Accumulates `value` into the pair series at month t, updating the
  /// derived disease and medicine series consistently.
  void Add(DiseaseId d, MedicineId m, int t, double value);

  /// Medicines ranked by total prescriptions for disease `d` over the
  /// window (the ranking behind Table III's AP/NDCG and Table II's
  /// shares), capped at `k`.
  std::vector<std::pair<MedicineId, double>> TopMedicines(
      DiseaseId d, std::size_t k) const;

  /// Diseases ranked by total prescriptions of medicine `m` over the
  /// window, capped at `k`.
  std::vector<std::pair<DiseaseId, double>> TopDiseases(
      MedicineId m, std::size_t k) const;

  /// Direct per-view setters (used by deserialization): they overwrite
  /// one view without touching the others, so Eq. 8 consistency is the
  /// caller's responsibility.
  void SetPrescriptionSeries(DiseaseId d, MedicineId m,
                             std::vector<double> values);
  void SetDiseaseSeries(DiseaseId d, std::vector<double> values);
  void SetMedicineSeries(MedicineId m, std::vector<double> values);

  /// Removes every series whose total over the window is below
  /// `min_total` (paper §VI uses 10). Disease/medicine series are
  /// thresholded independently of the pair series. Returns the number
  /// of series removed across all three views.
  std::size_t PruneRareSeries(double min_total);

 private:
  int num_months_;
  std::unordered_map<std::uint64_t, std::vector<double>> pairs_;
  std::unordered_map<DiseaseId, std::vector<double>> diseases_;
  std::unordered_map<MedicineId, std::vector<double>> medicines_;
};

/// Which link model reproduces the series.
enum class LinkModelKind {
  kProposed,      // MedicationModel (§IV)
  kCooccurrence,  // raw cooccurrence counts (Fig. 2a baseline)
};

struct ReproducerOptions {
  MedicationModelOptions model_options;
  /// Per-month rare item pruning applied before fitting (paper: < 5).
  FilterOptions filter_options;
  bool apply_filter = true;
  /// Series with total < this over the window are dropped (paper: 10).
  double min_series_total = 10.0;
  LinkModelKind model_kind = LinkModelKind::kProposed;
};

/// Runs the full §IV pipeline over a corpus. The corpus is copied
/// internally when filtering is enabled; the input is never mutated.
Result<SeriesSet> ReproduceSeries(const MicCorpus& corpus,
                                  const ReproducerOptions& options = {});

/// ExecContext overload: the context is forwarded into every monthly
/// MedicationModel::Fit (context.pool shards the E step), and
/// context.metrics receives the stage's counters
/// (reproduce.months_fitted / reproduce.months_skipped /
/// reproduce.series_pruned) under a "reproduce" span.
///
/// When context.cache carries an open CacheStore, each month's fitted
/// model is content addressed in the "em" namespace under a chained
/// fingerprint of (filtered claims, fit options, previous month's
/// fingerprint): a readable store serves unchanged months from their
/// snapshots (reproduce.snapshot_hits) instead of refitting, a
/// writable store captures every fresh fit, and an attached cache
/// turns on EM warm starts so seeding and incremental runs fit missed
/// months identically. Snapshots round-trip bit-exactly and pair
/// counts are applied in sorted key order, so a fully warm rerun
/// reproduces the cold run's series byte for byte.
Result<SeriesSet> ReproduceSeries(const MicCorpus& corpus,
                                  const ReproducerOptions& options,
                                  const ExecContext& context);

}  // namespace mic::medmodel

#endif  // MICTREND_MEDMODEL_TIMESERIES_H_
