#include "medmodel/timeseries.h"

#include <algorithm>
#include <optional>

#include "cache/cache_store.h"
#include "cache/fingerprint.h"
#include "common/logging.h"
#include "medmodel/baselines.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mic::medmodel {
namespace {

double SeriesTotal(const std::vector<double>& series) {
  double total = 0.0;
  for (double value : series) total += value;
  return total;
}

template <typename Map>
std::size_t PruneMap(Map& map, double min_total) {
  std::size_t removed = 0;
  for (auto it = map.begin(); it != map.end();) {
    if (SeriesTotal(it->second) < min_total) {
      it = map.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace

std::vector<double> SeriesSet::Prescription(DiseaseId d, MedicineId m) const {
  auto it = pairs_.find(PairKey(d, m));
  if (it == pairs_.end()) return std::vector<double>(num_months_, 0.0);
  return it->second;
}

std::vector<double> SeriesSet::Disease(DiseaseId d) const {
  auto it = diseases_.find(d);
  if (it == diseases_.end()) return std::vector<double>(num_months_, 0.0);
  return it->second;
}

std::vector<double> SeriesSet::Medicine(MedicineId m) const {
  auto it = medicines_.find(m);
  if (it == medicines_.end()) return std::vector<double>(num_months_, 0.0);
  return it->second;
}

void SeriesSet::Add(DiseaseId d, MedicineId m, int t, double value) {
  auto& pair = pairs_[PairKey(d, m)];
  if (pair.empty()) pair.assign(num_months_, 0.0);
  pair[t] += value;
  auto& disease = diseases_[d];
  if (disease.empty()) disease.assign(num_months_, 0.0);
  disease[t] += value;
  auto& medicine = medicines_[m];
  if (medicine.empty()) medicine.assign(num_months_, 0.0);
  medicine[t] += value;
}

namespace {

template <typename Key, typename Match>
std::vector<std::pair<Key, double>> RankPairs(
    const std::unordered_map<std::uint64_t, std::vector<double>>& pairs,
    std::size_t k, Match&& match) {
  std::vector<std::pair<Key, double>> ranked;
  for (const auto& [key, series] : pairs) {
    auto matched = match(key);
    if (!matched.has_value()) continue;
    double total = 0.0;
    for (double value : series) total += value;
    ranked.push_back({*matched, total});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;  // Deterministic ties.
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace

std::vector<std::pair<MedicineId, double>> SeriesSet::TopMedicines(
    DiseaseId d, std::size_t k) const {
  return RankPairs<MedicineId>(
      pairs_, k,
      [d](std::uint64_t key) -> std::optional<MedicineId> {
        if (!(PairDisease(key) == d)) return std::nullopt;
        return PairMedicine(key);
      });
}

std::vector<std::pair<DiseaseId, double>> SeriesSet::TopDiseases(
    MedicineId m, std::size_t k) const {
  return RankPairs<DiseaseId>(
      pairs_, k,
      [m](std::uint64_t key) -> std::optional<DiseaseId> {
        if (!(PairMedicine(key) == m)) return std::nullopt;
        return PairDisease(key);
      });
}

void SeriesSet::SetPrescriptionSeries(DiseaseId d, MedicineId m,
                                      std::vector<double> values) {
  values.resize(num_months_, 0.0);
  pairs_[PairKey(d, m)] = std::move(values);
}

void SeriesSet::SetDiseaseSeries(DiseaseId d, std::vector<double> values) {
  values.resize(num_months_, 0.0);
  diseases_[d] = std::move(values);
}

void SeriesSet::SetMedicineSeries(MedicineId m,
                                  std::vector<double> values) {
  values.resize(num_months_, 0.0);
  medicines_[m] = std::move(values);
}

std::size_t SeriesSet::PruneRareSeries(double min_total) {
  std::size_t removed = 0;
  removed += PruneMap(pairs_, min_total);
  removed += PruneMap(diseases_, min_total);
  removed += PruneMap(medicines_, min_total);
  return removed;
}

Result<SeriesSet> ReproduceSeries(const MicCorpus& corpus,
                                  const ReproducerOptions& options) {
  return ReproduceSeries(corpus, options, ExecContext{});
}

namespace {

// Chain fingerprint of one month's fit: the month's content digest, the
// fit options, and the previous month's fingerprint. Chaining the
// previous fingerprint makes warm-started (and temporally coupled) fits
// content addressed: editing month k re-keys every month >= k, while a
// one-month append leaves months 0..k-1 hitting their old snapshots.
std::uint64_t ChainedMonthFingerprint(std::uint64_t content_digest,
                                      const MedicationModelOptions& options,
                                      bool warm_start,
                                      std::uint64_t previous) {
  cache::Hasher hasher;
  hasher.Mix(content_digest);
  hasher.MixSigned(options.max_iterations);
  hasher.MixDouble(options.tolerance);
  hasher.MixDouble(options.phi_smoothing);
  hasher.MixDouble(options.prior_strength);
  hasher.Mix(warm_start ? 1 : 0);
  hasher.Mix(previous);
  return hasher.digest();
}

// Content digest of the month about to be fitted. When the ingest layer
// stamped a fingerprint on the raw month (the claim store persists one
// per segment), mixing that stamp with the filter settings is as
// injective as re-hashing the filtered records — filtering is a pure
// function of (raw month, options) — and skips a full pass over the
// data. Note the two derivations produce *different* key spaces: a
// store-ingested run and a CSV run keep separate (but each internally
// consistent and equally correct) snapshot universes.
std::uint64_t MonthContentDigest(const MonthlyDataset& raw_month,
                                 const MonthlyDataset& filtered_month,
                                 const ReproducerOptions& options,
                                 obs::Counter* fingerprint_reuses) {
  if (!raw_month.has_content_fingerprint()) {
    return cache::FingerprintMonth(filtered_month);
  }
  obs::Increment(fingerprint_reuses);
  cache::Hasher hasher;
  hasher.Mix(raw_month.content_fingerprint());
  hasher.Mix(options.apply_filter ? 1 : 0);
  hasher.Mix(options.filter_options.min_disease_count);
  hasher.Mix(options.filter_options.min_medicine_count);
  hasher.Mix(options.filter_options.drop_empty_records ? 1 : 0);
  return hasher.digest();
}

// Applies one month's pair counts to the series in ascending pair-key
// order. The derived disease/medicine sums of Eq. 8 accumulate across
// several pairs, so the application order is a floating-point contract:
// sorting makes a freshly fitted model and its deserialized snapshot
// (whose map iteration orders differ) produce byte-identical series.
void AddCountsSorted(const PairCounts& counts, std::size_t t,
                     SeriesSet& series) {
  std::vector<std::pair<std::uint64_t, double>> ordered(
      counts.raw().begin(), counts.raw().end());
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [key, value] : ordered) {
    series.Add(PairDisease(key), PairMedicine(key), static_cast<int>(t),
               value);
  }
}

}  // namespace

Result<SeriesSet> ReproduceSeries(const MicCorpus& corpus,
                                  const ReproducerOptions& options,
                                  const ExecContext& context) {
  if (corpus.num_months() == 0) {
    return Status::InvalidArgument("corpus has no months");
  }
  obs::MetricsRegistry* metrics = context.metrics;
  obs::Span reproduce_span(context, "reproduce");
  obs::Counter* fitted_counter =
      obs::GetCounter(metrics, "reproduce.months_fitted");
  obs::Counter* skipped_counter =
      obs::GetCounter(metrics, "reproduce.months_skipped");
  obs::Counter* snapshot_hits =
      obs::GetCounter(metrics, "reproduce.snapshot_hits");
  obs::Counter* snapshot_misses =
      obs::GetCounter(metrics, "reproduce.snapshot_misses");
  obs::Counter* fingerprint_reuses =
      obs::GetCounter(metrics, "reproduce.fingerprint_reuses");

  // The cache only stores MedicationModel snapshots; the cooccurrence
  // baseline is a single counting pass and not worth the I/O.
  cache::CacheStore* store =
      options.model_kind == LinkModelKind::kProposed ? context.cache
                                                     : nullptr;
  const bool cache_active =
      store != nullptr && (store->can_read() || store->can_write());
  // An attached cache implies warm starts: the seeding (write) run and
  // the incremental (read) run must fit every missed month identically,
  // so both derive the same effective option here.
  MedicationModelOptions model_options = options.model_options;
  model_options.warm_start = model_options.warm_start || cache_active;

  SeriesSet series(static_cast<int>(corpus.num_months()));
  // With temporal coupling (prior_strength > 0) each month's fit uses
  // the previous month's model as its Dirichlet prior (§IX extension);
  // warm starts reuse the same chain as the EM initializer.
  const bool keep_previous =
      model_options.prior_strength > 0.0 || model_options.warm_start;
  std::unique_ptr<MedicationModel> previous_model;
  std::uint64_t previous_fingerprint = 0;
  for (std::size_t t = 0; t < corpus.num_months(); ++t) {
    const MonthlyDataset& raw_month = corpus.month(t);
    MonthlyDataset month = raw_month;  // Copy; filter mutates.
    if (options.apply_filter) {
      FilterMonth(options.filter_options, month);
    }
    if (month.empty()) {  // A quiet month contributes zeros.
      obs::Increment(skipped_counter);
      continue;
    }

    const PairCounts* counts = nullptr;
    std::unique_ptr<MedicationModel> proposed;
    std::unique_ptr<CooccurrenceModel> cooccurrence;
    if (options.model_kind == LinkModelKind::kProposed) {
      std::uint64_t fingerprint = 0;
      if (cache_active) {
        fingerprint = ChainedMonthFingerprint(
            MonthContentDigest(raw_month, month, options,
                               fingerprint_reuses),
            model_options, model_options.warm_start,
            previous_fingerprint);
        if (store->can_read()) {
          auto payload = store->Get("em", fingerprint);
          if (payload.ok()) {
            auto restored = MedicationModel::Deserialize(*payload);
            if (restored.ok()) {
              proposed = std::move(restored).value();
              obs::Increment(snapshot_hits);
            }
            // A payload that fails to deserialize falls through to a
            // cold refit (and rewrites the entry below).
          }
        }
      }
      if (proposed == nullptr) {
        if (cache_active) obs::Increment(snapshot_misses);
        auto fitted = MedicationModel::Fit(month, model_options,
                                           previous_model.get(), context);
        if (!fitted.ok()) {  // No usable records this month.
          obs::Increment(skipped_counter);
          continue;
        }
        proposed = std::move(fitted).value();
        obs::Increment(fitted_counter);
        if (cache_active && store->can_write()) {
          // A failed write only costs the next run a refit.
          Status put = store->Put("em", fingerprint,
                                  proposed->Serialize());
          if (!put.ok()) {
            MIC_LOG(Warning) << "cache write failed: " << put.ToString();
          }
        }
      }
      counts = &proposed->MonthlyPairCounts();
      previous_fingerprint = fingerprint;
    } else {
      auto fitted = CooccurrenceModel::Fit(month);
      if (!fitted.ok()) {
        obs::Increment(skipped_counter);
        continue;
      }
      cooccurrence = std::move(fitted).value();
      counts = &cooccurrence->MonthlyPairCounts();
      obs::Increment(fitted_counter);
    }

    AddCountsSorted(*counts, t, series);
    if (proposed != nullptr && keep_previous) {
      previous_model = std::move(proposed);
    }
  }
  const std::size_t pruned =
      series.PruneRareSeries(options.min_series_total);
  obs::Increment(obs::GetCounter(metrics, "reproduce.series_pruned"),
                 pruned);
  return series;
}

}  // namespace mic::medmodel
