#include "medmodel/timeseries.h"

#include <algorithm>
#include <optional>

#include "medmodel/baselines.h"
#include "obs/trace.h"

namespace mic::medmodel {
namespace {

double SeriesTotal(const std::vector<double>& series) {
  double total = 0.0;
  for (double value : series) total += value;
  return total;
}

template <typename Map>
std::size_t PruneMap(Map& map, double min_total) {
  std::size_t removed = 0;
  for (auto it = map.begin(); it != map.end();) {
    if (SeriesTotal(it->second) < min_total) {
      it = map.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace

std::vector<double> SeriesSet::Prescription(DiseaseId d, MedicineId m) const {
  auto it = pairs_.find(PairKey(d, m));
  if (it == pairs_.end()) return std::vector<double>(num_months_, 0.0);
  return it->second;
}

std::vector<double> SeriesSet::Disease(DiseaseId d) const {
  auto it = diseases_.find(d);
  if (it == diseases_.end()) return std::vector<double>(num_months_, 0.0);
  return it->second;
}

std::vector<double> SeriesSet::Medicine(MedicineId m) const {
  auto it = medicines_.find(m);
  if (it == medicines_.end()) return std::vector<double>(num_months_, 0.0);
  return it->second;
}

void SeriesSet::Add(DiseaseId d, MedicineId m, int t, double value) {
  auto& pair = pairs_[PairKey(d, m)];
  if (pair.empty()) pair.assign(num_months_, 0.0);
  pair[t] += value;
  auto& disease = diseases_[d];
  if (disease.empty()) disease.assign(num_months_, 0.0);
  disease[t] += value;
  auto& medicine = medicines_[m];
  if (medicine.empty()) medicine.assign(num_months_, 0.0);
  medicine[t] += value;
}

namespace {

template <typename Key, typename Match>
std::vector<std::pair<Key, double>> RankPairs(
    const std::unordered_map<std::uint64_t, std::vector<double>>& pairs,
    std::size_t k, Match&& match) {
  std::vector<std::pair<Key, double>> ranked;
  for (const auto& [key, series] : pairs) {
    auto matched = match(key);
    if (!matched.has_value()) continue;
    double total = 0.0;
    for (double value : series) total += value;
    ranked.push_back({*matched, total});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;  // Deterministic ties.
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace

std::vector<std::pair<MedicineId, double>> SeriesSet::TopMedicines(
    DiseaseId d, std::size_t k) const {
  return RankPairs<MedicineId>(
      pairs_, k,
      [d](std::uint64_t key) -> std::optional<MedicineId> {
        if (!(PairDisease(key) == d)) return std::nullopt;
        return PairMedicine(key);
      });
}

std::vector<std::pair<DiseaseId, double>> SeriesSet::TopDiseases(
    MedicineId m, std::size_t k) const {
  return RankPairs<DiseaseId>(
      pairs_, k,
      [m](std::uint64_t key) -> std::optional<DiseaseId> {
        if (!(PairMedicine(key) == m)) return std::nullopt;
        return PairDisease(key);
      });
}

void SeriesSet::SetPrescriptionSeries(DiseaseId d, MedicineId m,
                                      std::vector<double> values) {
  values.resize(num_months_, 0.0);
  pairs_[PairKey(d, m)] = std::move(values);
}

void SeriesSet::SetDiseaseSeries(DiseaseId d, std::vector<double> values) {
  values.resize(num_months_, 0.0);
  diseases_[d] = std::move(values);
}

void SeriesSet::SetMedicineSeries(MedicineId m,
                                  std::vector<double> values) {
  values.resize(num_months_, 0.0);
  medicines_[m] = std::move(values);
}

std::size_t SeriesSet::PruneRareSeries(double min_total) {
  std::size_t removed = 0;
  removed += PruneMap(pairs_, min_total);
  removed += PruneMap(diseases_, min_total);
  removed += PruneMap(medicines_, min_total);
  return removed;
}

Result<SeriesSet> ReproduceSeries(const MicCorpus& corpus,
                                  const ReproducerOptions& options) {
  return ReproduceSeries(corpus, options, ExecContext{});
}

Result<SeriesSet> ReproduceSeries(const MicCorpus& corpus,
                                  const ReproducerOptions& options,
                                  const ExecContext& context) {
  if (corpus.num_months() == 0) {
    return Status::InvalidArgument("corpus has no months");
  }
  obs::MetricsRegistry* metrics = context.metrics;
  obs::Span reproduce_span(context, "reproduce");
  obs::Counter* fitted_counter =
      obs::GetCounter(metrics, "reproduce.months_fitted");
  obs::Counter* skipped_counter =
      obs::GetCounter(metrics, "reproduce.months_skipped");

  SeriesSet series(static_cast<int>(corpus.num_months()));
  // With temporal coupling (prior_strength > 0) each month's fit uses
  // the previous month's model as its Dirichlet prior (§IX extension).
  std::unique_ptr<MedicationModel> previous_model;
  for (std::size_t t = 0; t < corpus.num_months(); ++t) {
    MonthlyDataset month = corpus.month(t);  // Copy; filter mutates.
    if (options.apply_filter) {
      FilterMonth(options.filter_options, month);
    }
    if (month.empty()) {  // A quiet month contributes zeros.
      obs::Increment(skipped_counter);
      continue;
    }

    const PairCounts* counts = nullptr;
    std::unique_ptr<MedicationModel> proposed;
    std::unique_ptr<CooccurrenceModel> cooccurrence;
    if (options.model_kind == LinkModelKind::kProposed) {
      auto fitted = MedicationModel::Fit(month, options.model_options,
                                         previous_model.get(), context);
      if (!fitted.ok()) {  // No usable records this month.
        obs::Increment(skipped_counter);
        continue;
      }
      proposed = std::move(fitted).value();
      counts = &proposed->MonthlyPairCounts();
    } else {
      auto fitted = CooccurrenceModel::Fit(month);
      if (!fitted.ok()) {
        obs::Increment(skipped_counter);
        continue;
      }
      cooccurrence = std::move(fitted).value();
      counts = &cooccurrence->MonthlyPairCounts();
    }
    obs::Increment(fitted_counter);

    counts->ForEach([&series, t](DiseaseId d, MedicineId m, double value) {
      series.Add(d, m, static_cast<int>(t), value);
    });
    if (proposed != nullptr &&
        options.model_options.prior_strength > 0.0) {
      previous_model = std::move(proposed);
    }
  }
  const std::size_t pruned =
      series.PruneRareSeries(options.min_series_total);
  obs::Increment(obs::GetCounter(metrics, "reproduce.series_pruned"),
                 pruned);
  return series;
}

}  // namespace mic::medmodel
