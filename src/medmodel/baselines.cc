#include "medmodel/baselines.h"

namespace mic::medmodel {

Result<std::unique_ptr<CooccurrenceModel>> CooccurrenceModel::Fit(
    const MonthlyDataset& month, const BaselineOptions& options) {
  if (options.smoothing < 0.0 || options.smoothing >= 1.0) {
    return Status::InvalidArgument("smoothing must be in [0, 1)");
  }
  auto model =
      std::unique_ptr<CooccurrenceModel>(new CooccurrenceModel());

  std::unordered_map<MedicineId, bool> medicine_seen;
  for (const MicRecord& record : month.records()) {
    for (const auto& medicine : record.medicines) {
      medicine_seen[medicine.id] = true;
      for (const auto& disease : record.diseases) {
        // Cooc_r(d, m): multiplicity-weighted record-level cooccurrence.
        const double cooccurrence =
            static_cast<double>(disease.count) *
            static_cast<double>(medicine.count);
        model->phi_[disease.id][medicine.id] += cooccurrence;
        model->cooccurrence_counts_.Add(disease.id, medicine.id,
                                        cooccurrence);
      }
    }
  }
  model->num_medicines_ = medicine_seen.size();
  if (model->phi_.empty() || model->num_medicines_ == 0) {
    return Status::InvalidArgument("month has no cooccurring pairs");
  }

  const double keep = 1.0 - options.smoothing;
  model->smoothing_floor_ =
      options.smoothing / static_cast<double>(model->num_medicines_);
  for (auto& [disease, row] : model->phi_) {
    double total = 0.0;
    for (const auto& [medicine, value] : row) total += value;
    for (auto& [medicine, value] : row) value = keep * value / total;
  }
  return model;
}

double CooccurrenceModel::Phi(DiseaseId d, MedicineId m) const {
  auto row = phi_.find(d);
  if (row == phi_.end()) return 0.0;
  auto it = row->second.find(m);
  const double base = it == row->second.end() ? 0.0 : it->second;
  return base + smoothing_floor_;
}

double CooccurrenceModel::PredictiveProbability(const MicRecord& record,
                                                MedicineId m) const {
  const double n_r = static_cast<double>(record.TotalDiseaseMentions());
  if (n_r == 0.0) return 0.0;
  double probability = 0.0;
  for (const auto& entry : record.diseases) {
    const double theta = static_cast<double>(entry.count) / n_r;
    probability += theta * Phi(entry.id, m);
  }
  return probability;
}

Result<std::unique_ptr<UnigramModel>> UnigramModel::Fit(
    const MonthlyDataset& month, const BaselineOptions& options) {
  if (options.smoothing < 0.0 || options.smoothing >= 1.0) {
    return Status::InvalidArgument("smoothing must be in [0, 1)");
  }
  auto model = std::unique_ptr<UnigramModel>(new UnigramModel());
  double total = 0.0;
  for (const MicRecord& record : month.records()) {
    for (const auto& medicine : record.medicines) {
      model->probabilities_[medicine.id] +=
          static_cast<double>(medicine.count);
      total += static_cast<double>(medicine.count);
    }
  }
  if (model->probabilities_.empty()) {
    return Status::InvalidArgument("month has no medicines");
  }
  const double keep = 1.0 - options.smoothing;
  model->smoothing_floor_ =
      options.smoothing /
      static_cast<double>(model->probabilities_.size());
  for (auto& [medicine, value] : model->probabilities_) {
    value = keep * value / total;
  }
  return model;
}

double UnigramModel::Probability(MedicineId m) const {
  auto it = probabilities_.find(m);
  const double base = it == probabilities_.end() ? 0.0 : it->second;
  return base + smoothing_floor_;
}

double UnigramModel::PredictiveProbability(const MicRecord& record,
                                           MedicineId m) const {
  (void)record;
  return Probability(m);
}

}  // namespace mic::medmodel
