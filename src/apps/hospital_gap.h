// Inter-hospital prescription gap analysis (§VII-C): hospitals are
// grouped into small/medium/large bed-count classes, the medication
// model is fitted per class, and for a target medicine the diseases it
// is prescribed for are ranked by share — Table II.

#ifndef MICTREND_APPS_HOSPITAL_GAP_H_
#define MICTREND_APPS_HOSPITAL_GAP_H_

#include <vector>

#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/dataset.h"

namespace mic::apps {

struct HospitalGapOptions {
  medmodel::ReproducerOptions reproducer;
  /// Number of top diseases reported per class (paper: 10).
  std::size_t top_k = 10;
};

/// One ranked row: a disease and its share of the medicine's
/// prescriptions within the hospital class.
struct DiseaseShare {
  DiseaseId disease;
  double ratio = 0.0;  // in [0, 1]
};

struct HospitalClassRanking {
  HospitalClass hospital_class;
  std::vector<DiseaseShare> top_diseases;
  /// Total estimated prescriptions of the medicine in this class.
  double total_prescriptions = 0.0;
};

struct HospitalGapReport {
  MedicineId medicine;
  std::vector<HospitalClassRanking> classes;  // small, medium, large
};

/// Runs the per-class pipeline for `medicine`.
Result<HospitalGapReport> AnalyzeHospitalGap(
    const MicCorpus& corpus, MedicineId medicine,
    const HospitalGapOptions& options = {});

}  // namespace mic::apps

#endif  // MICTREND_APPS_HOSPITAL_GAP_H_
