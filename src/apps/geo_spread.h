// Geographical prescription spread analysis (§VII-B): the corpus is
// split by the city of each record's hospital, the medication model is
// fitted per city, and per-city prescription counts of a medicine group
// (e.g. an original drug and its generics) are reported at snapshot
// months — Fig. 8's maps as tables.

#ifndef MICTREND_APPS_GEO_SPREAD_H_
#define MICTREND_APPS_GEO_SPREAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/dataset.h"

namespace mic::apps {

struct GeoSpreadOptions {
  medmodel::ReproducerOptions reproducer;
  /// Months (0-based) at which shares are reported (the paper uses one
  /// month before release, one month after, one year after).
  std::vector<int> snapshot_months;
};

/// Counts for one (city, medicine) cell.
struct GeoCell {
  CityId city;
  MedicineId medicine;
  /// Estimated prescription count per snapshot month (aligned with
  /// GeoSpreadOptions::snapshot_months).
  std::vector<double> counts;
};

struct GeoSpreadReport {
  std::vector<int> snapshot_months;
  std::vector<GeoCell> cells;

  /// Count for (city, medicine) at snapshot index; 0 when absent.
  double Count(CityId city, MedicineId medicine,
               std::size_t snapshot) const;
  /// Share of `medicine` among `group` in `city` at snapshot index
  /// (0 when the group total is 0).
  double Share(CityId city, MedicineId medicine,
               const std::vector<MedicineId>& group,
               std::size_t snapshot) const;
};

/// Runs the per-city pipeline for the given medicines.
Result<GeoSpreadReport> AnalyzeGeoSpread(
    const MicCorpus& corpus, const std::vector<MedicineId>& medicines,
    const GeoSpreadOptions& options);

}  // namespace mic::apps

#endif  // MICTREND_APPS_GEO_SPREAD_H_
