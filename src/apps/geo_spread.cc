#include "apps/geo_spread.h"

namespace mic::apps {

double GeoSpreadReport::Count(CityId city, MedicineId medicine,
                              std::size_t snapshot) const {
  for (const GeoCell& cell : cells) {
    if (cell.city == city && cell.medicine == medicine) {
      return snapshot < cell.counts.size() ? cell.counts[snapshot] : 0.0;
    }
  }
  return 0.0;
}

double GeoSpreadReport::Share(CityId city, MedicineId medicine,
                              const std::vector<MedicineId>& group,
                              std::size_t snapshot) const {
  double total = 0.0;
  for (MedicineId member : group) total += Count(city, member, snapshot);
  if (total <= 0.0) return 0.0;
  return Count(city, medicine, snapshot) / total;
}

Result<GeoSpreadReport> AnalyzeGeoSpread(
    const MicCorpus& corpus, const std::vector<MedicineId>& medicines,
    const GeoSpreadOptions& options) {
  if (medicines.empty()) {
    return Status::InvalidArgument("no medicines requested");
  }
  if (options.snapshot_months.empty()) {
    return Status::InvalidArgument("no snapshot months requested");
  }
  for (int month : options.snapshot_months) {
    if (month < 0 || month >= static_cast<int>(corpus.num_months())) {
      return Status::OutOfRange("snapshot month " + std::to_string(month) +
                                " outside the corpus window");
    }
  }

  GeoSpreadReport report;
  report.snapshot_months = options.snapshot_months;

  const Catalog& catalog = corpus.catalog();
  for (std::uint32_t c = 0; c < catalog.cities().size(); ++c) {
    const CityId city(c);
    // Restrict to records whose hospital is in this city; the medication
    // model is then fitted on the city's own claims (paper §VII-B).
    MicCorpus city_corpus =
        corpus.FilterByHospital([&catalog, city](HospitalId hospital) {
          auto info = catalog.GetHospitalInfo(hospital);
          return info.ok() && info->city == city;
        });
    if (city_corpus.TotalRecords() == 0) continue;

    medmodel::ReproducerOptions reproducer = options.reproducer;
    // City slices are small; keep every series.
    reproducer.min_series_total = 0.0;
    MIC_ASSIGN_OR_RETURN(medmodel::SeriesSet series,
                         medmodel::ReproduceSeries(city_corpus, reproducer));

    for (MedicineId medicine : medicines) {
      const std::vector<double> medicine_series = series.Medicine(medicine);
      GeoCell cell;
      cell.city = city;
      cell.medicine = medicine;
      for (int month : options.snapshot_months) {
        cell.counts.push_back(medicine_series[month]);
      }
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

}  // namespace mic::apps
