#include "apps/repositioning.h"

#include <algorithm>

namespace mic::apps {

Result<std::vector<RepositioningCandidate>> ScreenRepositioningCandidates(
    const medmodel::SeriesSet& series, const trend::TrendReport& report,
    const trend::TrendAnalyzer& analyzer,
    const RepositioningOptions& options) {
  if (options.max_prior_share < 0.0 || options.max_prior_share > 1.0) {
    return Status::InvalidArgument("max_prior_share must be in [0, 1]");
  }

  std::vector<RepositioningCandidate> candidates;
  for (const trend::SeriesAnalysis& analysis : report.prescriptions) {
    if (!analysis.has_change) continue;
    if (analysis.lambda <= options.min_lambda) continue;
    const double evidence =
        analysis.aic_without_intervention - analysis.aic;
    if (evidence < options.min_evidence) continue;
    // New-indication signature: the prescription relationship itself
    // changed, not the disease or medicine at large.
    if (analyzer.ClassifyPrescriptionChange(report, analysis) !=
        trend::ChangeCause::kPrescriptionDerived) {
      continue;
    }

    const std::vector<double> pair_series =
        series.Prescription(analysis.disease, analysis.medicine);
    double total = 0.0;
    double before = 0.0;
    for (int t = 0; t < static_cast<int>(pair_series.size()); ++t) {
      total += pair_series[t];
      if (t < analysis.change_point) before += pair_series[t];
    }
    if (total <= 0.0) continue;
    const double prior_share = before / total;
    if (prior_share > options.max_prior_share) continue;

    RepositioningCandidate candidate;
    candidate.disease = analysis.disease;
    candidate.medicine = analysis.medicine;
    candidate.change_point = analysis.change_point;
    candidate.lambda = analysis.lambda;
    candidate.evidence = evidence;
    candidate.prior_share = prior_share;
    candidates.push_back(candidate);
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const RepositioningCandidate& a,
               const RepositioningCandidate& b) {
              return a.evidence > b.evidence;
            });
  return candidates;
}

}  // namespace mic::apps

