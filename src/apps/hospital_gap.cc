#include "apps/hospital_gap.h"

#include <algorithm>

namespace mic::apps {

Result<HospitalGapReport> AnalyzeHospitalGap(
    const MicCorpus& corpus, MedicineId medicine,
    const HospitalGapOptions& options) {
  HospitalGapReport report;
  report.medicine = medicine;

  const Catalog& catalog = corpus.catalog();
  const HospitalClass classes[] = {HospitalClass::kSmall,
                                   HospitalClass::kMedium,
                                   HospitalClass::kLarge};
  for (HospitalClass hospital_class : classes) {
    MicCorpus class_corpus = corpus.FilterByHospital(
        [&catalog, hospital_class](HospitalId hospital) {
          auto info = catalog.GetHospitalInfo(hospital);
          return info.ok() && ClassifyHospital(info->beds) == hospital_class;
        });
    HospitalClassRanking ranking;
    ranking.hospital_class = hospital_class;
    if (class_corpus.TotalRecords() > 0) {
      medmodel::ReproducerOptions reproducer = options.reproducer;
      reproducer.min_series_total = 0.0;
      MIC_ASSIGN_OR_RETURN(
          medmodel::SeriesSet series,
          medmodel::ReproduceSeries(class_corpus, reproducer));

      // Total prescriptions of the medicine per disease over the window.
      std::vector<DiseaseShare> shares;
      double total = 0.0;
      series.ForEachPair([&](DiseaseId d, MedicineId m,
                             const std::vector<double>& pair_series) {
        if (!(m == medicine)) return;
        double sum = 0.0;
        for (double value : pair_series) sum += value;
        if (sum <= 0.0) return;
        shares.push_back({d, sum});
        total += sum;
      });
      if (total > 0.0) {
        for (DiseaseShare& share : shares) share.ratio /= total;
        std::sort(shares.begin(), shares.end(),
                  [](const DiseaseShare& a, const DiseaseShare& b) {
                    return a.ratio > b.ratio;
                  });
        if (shares.size() > options.top_k) {
          shares.resize(options.top_k);
        }
        ranking.top_diseases = std::move(shares);
        ranking.total_prescriptions = total;
      }
    }
    report.classes.push_back(std::move(ranking));
  }
  return report;
}

}  // namespace mic::apps
