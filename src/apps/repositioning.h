// Clinically-based drug repositioning screening — the application the
// paper's introduction motivates: "if new indications can be detected
// early from the actual use of medicines in clinical practice, the
// feasibility of clinically-based drug repositioning will be worth
// exploring."
//
// A repositioning candidate is a (disease, medicine) pair whose
// prescription series shows a PRESCRIPTION-DERIVED rising break (neither
// the disease nor the medicine as a whole breaks nearby) starting from a
// near-zero base — the new-indication signature of Fig. 7a.

#ifndef MICTREND_APPS_REPOSITIONING_H_
#define MICTREND_APPS_REPOSITIONING_H_

#include <vector>

#include "common/result.h"
#include "medmodel/timeseries.h"
#include "trend/trend_analyzer.h"

namespace mic::apps {

struct RepositioningOptions {
  /// Minimum criterion improvement (AIC_without - AIC_with) to rank on.
  double min_evidence = 4.0;
  /// The pair's prescription mass before the break, as a fraction of
  /// its total mass, must be at most this ("new" use, not growth of an
  /// established one).
  double max_prior_share = 0.25;
  /// Rising breaks only.
  double min_lambda = 0.0;
};

struct RepositioningCandidate {
  DiseaseId disease;
  MedicineId medicine;
  int change_point = 0;
  /// Intervention slope (original units per month).
  double lambda = 0.0;
  /// AIC_without - AIC_with: larger = stronger break evidence.
  double evidence = 0.0;
  /// Fraction of the pair's mass observed before the break.
  double prior_share = 0.0;
};

/// Screens an analyzed report for new-indication signatures. `report`
/// must come from `analyzer.AnalyzeAll(context, series)` so the disease and
/// medicine verdicts needed for cause attribution are present.
/// Candidates are returned strongest-evidence first.
Result<std::vector<RepositioningCandidate>> ScreenRepositioningCandidates(
    const medmodel::SeriesSet& series, const trend::TrendReport& report,
    const trend::TrendAnalyzer& analyzer,
    const RepositioningOptions& options = {});

}  // namespace mic::apps

#endif  // MICTREND_APPS_REPOSITIONING_H_
