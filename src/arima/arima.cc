#include "arima/arima.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/matrix.h"
#include "ssm/kalman.h"
#include "ssm/model.h"
#include "stats/metrics.h"

namespace mic::arima {
namespace {

constexpr double kLogTwoPi = 1.8378770664093453;

std::vector<double> Difference(const std::vector<double>& series, int d) {
  std::vector<double> out = series;
  for (int round = 0; round < d; ++round) {
    std::vector<double> next(out.size() - 1);
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      next[i] = out[i + 1] - out[i];
    }
    out = std::move(next);
  }
  return out;
}

// Harvey state space form of ARMA(p, q) with unit innovation variance:
//   state dim r = max(p, q+1)
//   T = [phi | [I; 0]],  R = (1, theta_1, ..., theta_{r-1})', Z = e_1.
Result<ssm::StateSpaceModel> BuildArmaModel(const std::vector<double>& ar,
                                            const std::vector<double>& ma) {
  const std::size_t p = ar.size();
  const std::size_t q = ma.size();
  const std::size_t r = std::max(p, q + 1);

  ssm::StateSpaceModel model;
  model.transition = la::Matrix(r, r);
  for (std::size_t i = 0; i < p; ++i) model.transition(i, 0) = ar[i];
  for (std::size_t i = 0; i + 1 < r; ++i) model.transition(i, i + 1) = 1.0;

  model.selection = la::Matrix(r, 1);
  model.selection(0, 0) = 1.0;
  for (std::size_t i = 0; i < q; ++i) model.selection(i + 1, 0) = ma[i];

  model.state_noise = la::Matrix(1, 1);
  model.state_noise(0, 0) = 1.0;
  model.observation = la::Vector(r);
  model.observation[0] = 1.0;
  model.observation_variance = 0.0;
  model.initial_state = la::Vector(r);
  model.num_diffuse = 0;

  // Stationary initial covariance: solve vec(P) = (I - T (x) T)^-1
  // vec(R R').
  const la::Matrix rrt = model.selection * model.selection.Transpose();
  const std::size_t rr = r * r;
  la::Matrix system(rr, rr);
  la::Matrix rhs(rr, 1);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      const std::size_t row = i * r + j;
      rhs(row, 0) = rrt(i, j);
      for (std::size_t k = 0; k < r; ++k) {
        for (std::size_t l = 0; l < r; ++l) {
          const std::size_t col = k * r + l;
          const double value = model.transition(i, k) *
                               model.transition(j, l);
          system(row, col) = (row == col ? 1.0 : 0.0) - value;
        }
      }
    }
  }
  MIC_ASSIGN_OR_RETURN(la::Matrix vec_p, la::Solve(system, rhs));
  model.initial_covariance = la::Matrix(r, r);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      model.initial_covariance(i, j) = vec_p(i * r + j, 0);
    }
  }
  model.initial_covariance.Symmetrize();
  return model;
}

// Concentrated Gaussian log-likelihood of an ARMA model on `series`:
// sigma^2 is profiled out as mean(v^2/F). Returns the log-likelihood and
// the concentrated variance, or an error on numerical failure.
struct ConcentratedLikelihood {
  double log_likelihood;
  double sigma2;
};

Result<ConcentratedLikelihood> ArmaLikelihood(
    const std::vector<double>& ar, const std::vector<double>& ma,
    const std::vector<double>& series) {
  MIC_ASSIGN_OR_RETURN(ssm::StateSpaceModel model, BuildArmaModel(ar, ma));
  MIC_ASSIGN_OR_RETURN(ssm::FilterResult filtered,
                       ssm::RunFilter(model, series));
  const std::size_t n = series.size();
  double sum_squared = 0.0;
  double sum_log_f = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double f = filtered.prediction_variances[t];
    const double v = filtered.innovations[t];
    if (!(f > 0.0) || !std::isfinite(f) || !std::isfinite(v)) {
      return Status::NumericError("unstable ARMA filter");
    }
    sum_squared += v * v / f;
    sum_log_f += std::log(f);
  }
  const double dn = static_cast<double>(n);
  const double sigma2 = std::max(sum_squared / dn, 1e-300);
  ConcentratedLikelihood result;
  result.sigma2 = sigma2;
  result.log_likelihood =
      -0.5 * (dn * (kLogTwoPi + 1.0 + std::log(sigma2)) + sum_log_f);
  return result;
}

}  // namespace

std::vector<double> PacfToCoefficients(const std::vector<double>& raw) {
  // tanh keeps each partial autocorrelation in (-1, 1); Levinson-Durbin
  // then yields a stationary AR (equivalently invertible MA) polynomial.
  const std::size_t order = raw.size();
  std::vector<double> coefficients(order, 0.0);
  std::vector<double> previous(order, 0.0);
  for (std::size_t k = 0; k < order; ++k) {
    const double pac = std::tanh(raw[k]);
    coefficients[k] = pac;
    for (std::size_t j = 0; j < k; ++j) {
      coefficients[j] = previous[j] - pac * previous[k - 1 - j];
    }
    previous = coefficients;
  }
  return coefficients;
}

Result<FittedArima> FitArima(const std::vector<double>& series,
                             const ArimaOrder& order,
                             const ArimaFitOptions& options) {
  if (order.p < 0 || order.d < 0 || order.q < 0) {
    return Status::InvalidArgument("negative ARIMA order");
  }
  if (static_cast<int>(series.size()) <= order.d) {
    return Status::InvalidArgument("series shorter than differencing order");
  }
  std::vector<double> working = Difference(series, order.d);
  const int r = std::max(order.p, order.q + 1);
  if (static_cast<int>(working.size()) < r + 2) {
    return Status::InvalidArgument("series too short for ARMA order");
  }
  const double mean = stats::Mean(working);
  for (double& value : working) value -= mean;

  const std::size_t dims =
      static_cast<std::size_t>(order.p + order.q);

  auto coefficients_from =
      [&order](const std::vector<double>& point)
      -> std::pair<std::vector<double>, std::vector<double>> {
    std::vector<double> ar_raw(point.begin(), point.begin() + order.p);
    std::vector<double> ma_raw(point.begin() + order.p, point.end());
    return {PacfToCoefficients(ar_raw), PacfToCoefficients(ma_raw)};
  };

  FittedArima fitted;
  fitted.order = order;
  fitted.mean = mean;

  if (dims == 0) {
    MIC_ASSIGN_OR_RETURN(ConcentratedLikelihood likelihood,
                         ArmaLikelihood({}, {}, working));
    fitted.sigma2 = likelihood.sigma2;
    fitted.log_likelihood = likelihood.log_likelihood;
  } else {
    auto objective = [&](const std::vector<double>& point) -> double {
      for (double value : point) {
        if (std::fabs(value) > 12.0) {
          return std::numeric_limits<double>::infinity();
        }
      }
      const auto [ar, ma] = coefficients_from(point);
      auto likelihood = ArmaLikelihood(ar, ma, working);
      if (!likelihood.ok()) {
        return std::numeric_limits<double>::infinity();
      }
      return -likelihood->log_likelihood;
    };
    std::vector<double> start(dims, 0.1);
    MIC_ASSIGN_OR_RETURN(
        ssm::NelderMeadResult optimum,
        ssm::MinimizeNelderMead(objective, start, options.optimizer));
    if (!std::isfinite(optimum.best_value)) {
      return Status::NumericError("ARIMA likelihood optimization failed");
    }
    const auto [ar, ma] = coefficients_from(optimum.best_point);
    fitted.ar = ar;
    fitted.ma = ma;
    MIC_ASSIGN_OR_RETURN(ConcentratedLikelihood likelihood,
                         ArmaLikelihood(ar, ma, working));
    fitted.sigma2 = likelihood.sigma2;
    fitted.log_likelihood = likelihood.log_likelihood;
  }

  const int parameters = order.p + order.q + 2;  // + variance + mean
  fitted.aic = -2.0 * fitted.log_likelihood +
               2.0 * static_cast<double>(parameters);
  return fitted;
}

Result<FittedArima> SelectArima(const std::vector<double>& series,
                                const ArimaSelectionOptions& options) {
  Result<FittedArima> best = Status::NotFound("no ARIMA order fitted");
  for (int d = 0; d <= options.max_d; ++d) {
    for (int p = 0; p <= options.max_p; ++p) {
      for (int q = 0; q <= options.max_q; ++q) {
        auto fitted = FitArima(series, {p, d, q}, options.fit);
        if (!fitted.ok()) continue;
        if (!best.ok() || fitted->aic < best->aic) {
          best = std::move(fitted);
        }
      }
    }
  }
  return best;
}

Result<std::vector<double>> ForecastArima(const FittedArima& model,
                                          const std::vector<double>& series,
                                          int horizon) {
  if (horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  std::vector<double> working = Difference(series, model.order.d);
  for (double& value : working) value -= model.mean;

  MIC_ASSIGN_OR_RETURN(ssm::StateSpaceModel arma,
                       BuildArmaModel(model.ar, model.ma));
  MIC_ASSIGN_OR_RETURN(ssm::ForecastResult differenced,
                       ssm::ForecastAhead(arma, working, horizon));

  std::vector<double> forecast(differenced.mean);
  for (double& value : forecast) value += model.mean;
  // Undo the d-fold differencing: at each level, the forecast of the
  // less-differenced series is the cumulative sum anchored at that
  // level's last observed value.
  for (int level = model.order.d - 1; level >= 0; --level) {
    const std::vector<double> anchor_series = Difference(series, level);
    double last = anchor_series.back();
    for (double& value : forecast) {
      last += value;
      value = last;
    }
  }
  return forecast;
}

}  // namespace mic::arima
