// ARIMA(p,d,q) baseline (§VIII-B), implemented on the same Kalman
// machinery as the structural models: the d-times differenced,
// mean-adjusted series is modeled as ARMA(p,q) in Harvey state space
// form; coefficients are optimized through a partial-autocorrelation
// transform that enforces stationarity/invertibility, and the innovation
// variance is concentrated out of the likelihood. Orders are selected on
// a (p <= 3, d <= 1, q <= 3) grid by AIC, as the paper specifies
// ("optimal parameters by using AIC").

#ifndef MICTREND_ARIMA_ARIMA_H_
#define MICTREND_ARIMA_ARIMA_H_

#include <vector>

#include "common/result.h"
#include "ssm/optimizer.h"

namespace mic::arima {

struct ArimaOrder {
  int p = 0;
  int d = 0;
  int q = 0;

  friend bool operator==(const ArimaOrder&, const ArimaOrder&) = default;
};

struct ArimaFitOptions {
  ssm::NelderMeadOptions optimizer;
};

/// A fitted ARIMA model.
struct FittedArima {
  ArimaOrder order;
  std::vector<double> ar;  // phi_1..phi_p
  std::vector<double> ma;  // theta_1..theta_q
  /// Mean of the differenced series (drift when d = 1).
  double mean = 0.0;
  /// Concentrated ML innovation variance.
  double sigma2 = 1.0;
  double log_likelihood = 0.0;
  /// AIC = -2 logL + 2 (p + q + 2)  [+2 for variance and mean].
  double aic = 0.0;
};

/// Fits a fixed order by maximum likelihood. Requires the differenced
/// series to keep at least max(p, q+1) + 2 observations.
Result<FittedArima> FitArima(const std::vector<double>& series,
                             const ArimaOrder& order,
                             const ArimaFitOptions& options = {});

struct ArimaSelectionOptions {
  int max_p = 3;
  int max_d = 1;
  int max_q = 3;
  ArimaFitOptions fit;
};

/// Grid-searches orders and returns the AIC-best fit.
Result<FittedArima> SelectArima(const std::vector<double>& series,
                                const ArimaSelectionOptions& options = {});

/// Mean forecasts `horizon` steps past the end of `series` (the series
/// the model was fitted on), undoing differencing and mean adjustment.
Result<std::vector<double>> ForecastArima(const FittedArima& model,
                                          const std::vector<double>& series,
                                          int horizon);

/// Maps unconstrained optimizer coordinates to a stationary AR (or
/// invertible MA) coefficient vector via tanh partial autocorrelations
/// and the Levinson-Durbin recursion (Monahan's transform). Exposed for
/// testing.
std::vector<double> PacfToCoefficients(const std::vector<double>& raw);

}  // namespace mic::arima

#endif  // MICTREND_ARIMA_ARIMA_H_
