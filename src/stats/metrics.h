// Statistical evaluation substrate used throughout the paper's
// experiments: descriptive statistics, paired t-tests with effect sizes
// (§VIII reports t, p, and Cohen's d), inter-rater agreement (Cohen's
// kappa, Table VI), ranking quality (AP@K / NDCG@K, Table III), and
// forecasting error (RMSE, §VIII-B2).

#ifndef MICTREND_STATS_METRICS_H_
#define MICTREND_STATS_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mic::stats {

/// Sample mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

/// Unbiased (n-1) sample standard deviation; 0 when n < 2.
double StdDev(const std::vector<double>& values);

/// Median (averaging the middle pair for even n); fails on empty input.
Result<double> Median(std::vector<double> values);

/// Root mean squared error between two equal-length series.
Result<double> Rmse(const std::vector<double>& predicted,
                    const std::vector<double>& actual);

/// Result of a two-sided paired t-test.
struct PairedTTestResult {
  double t_statistic = 0.0;
  /// Degrees of freedom (n - 1).
  int degrees_of_freedom = 0;
  /// Two-sided p-value.
  double p_value = 1.0;
  /// Cohen's d for paired samples: mean(diff) / sd(diff).
  double cohens_d = 0.0;
  double mean_difference = 0.0;
};

/// Two-sided paired t-test of a vs b (difference = a - b). Requires
/// equal lengths and n >= 2.
Result<PairedTTestResult> PairedTTest(const std::vector<double>& a,
                                      const std::vector<double>& b);

/// Regularized incomplete beta function I_x(a, b) via continued
/// fractions (Lentz); the building block of the t distribution CDF.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
double StudentTCdf(double t, double dof);

/// Average Precision at cutoff K: `ranked` lists relevance labels
/// (true = relevant) in ranked order; `num_relevant` is the total number
/// of relevant items (for the normalizer min(K, num_relevant)).
/// Returns 0 when num_relevant is 0.
double AveragePrecisionAtK(const std::vector<bool>& ranked, std::size_t k,
                           std::size_t num_relevant);

/// Normalized Discounted Cumulative Gain at cutoff K with binary gains.
double NdcgAtK(const std::vector<bool>& ranked, std::size_t k,
               std::size_t num_relevant);

/// 2x2 confusion matrix for binary agreement between two raters
/// (Table VI compares exact vs approximate change point detection).
struct BinaryConfusion {
  std::uint64_t both_positive = 0;   // exact pos, approx pos
  std::uint64_t only_first = 0;      // exact pos, approx neg
  std::uint64_t only_second = 0;     // exact neg, approx pos
  std::uint64_t both_negative = 0;

  std::uint64_t Total() const {
    return both_positive + only_first + only_second + both_negative;
  }
  void Add(bool first, bool second) {
    if (first && second) ++both_positive;
    else if (first) ++only_first;
    else if (second) ++only_second;
    else ++both_negative;
  }
};

/// Cohen's kappa of a binary confusion matrix; fails on an empty matrix.
Result<double> CohensKappa(const BinaryConfusion& confusion);

/// Pearson correlation coefficient; fails when either sample is
/// constant or lengths differ.
Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Regularized lower incomplete gamma function P(a, x), evaluated by
/// series expansion for x < a + 1 and continued fraction otherwise.
double RegularizedLowerGamma(double a, double x);

/// CDF of the chi-square distribution with `dof` degrees of freedom.
double ChiSquareCdf(double x, double dof);

/// Ljung-Box portmanteau test of residual autocorrelation.
struct LjungBoxResult {
  double q_statistic = 0.0;
  int lags_used = 0;
  /// p-value against chi-square(lags - fitted_parameters).
  double p_value = 1.0;
};

/// Tests the first `lags` autocorrelations of `residuals`;
/// `fitted_parameters` reduces the null degrees of freedom. NaN entries
/// are skipped. Requires more observations than lags.
Result<LjungBoxResult> LjungBoxTest(const std::vector<double>& residuals,
                                    int lags, int fitted_parameters = 0);

/// Two-sided Wilcoxon signed-rank test (normal approximation with
/// tie/zero handling) — the nonparametric companion to PairedTTest.
struct WilcoxonResult {
  double w_statistic = 0.0;  // Sum of positive-difference ranks.
  double z_statistic = 0.0;
  double p_value = 1.0;
  int effective_n = 0;  // Non-zero differences.
};

Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b);

}  // namespace mic::stats

#endif  // MICTREND_STATS_METRICS_H_
