#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

namespace mic::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double value : values) total += value;
  return total / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double sum_squares = 0.0;
  for (double value : values) {
    const double diff = value - mean;
    sum_squares += diff * diff;
  }
  return std::sqrt(sum_squares / static_cast<double>(n - 1));
}

Result<double> Median(std::vector<double> values) {
  if (values.empty()) {
    return Status::InvalidArgument("median of empty sample");
  }
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

Result<double> Rmse(const std::vector<double>& predicted,
                    const std::vector<double>& actual) {
  if (predicted.size() != actual.size()) {
    return Status::InvalidArgument("RMSE requires equal lengths");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("RMSE of empty series");
  }
  double sum_squares = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double diff = predicted[i] - actual[i];
    sum_squares += diff * diff;
  }
  return std::sqrt(sum_squares / static_cast<double>(predicted.size()));
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // I_x(a,b) = x^a (1-x)^b / (a B(a,b)) * 1/(1 + d1/(1 + d2/(1 + ...)))
  // evaluated by the modified Lentz algorithm (Numerical Recipes betacf).
  const double log_beta =
      std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - log_beta);

  // Use the symmetry relation to keep the continued fraction convergent.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x);
  }

  constexpr double kTiny = 1e-300;
  constexpr double kEpsilon = 1e-14;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double result = d;
  for (int m = 1; m <= 300; ++m) {
    const double dm = static_cast<double>(m);
    // Even step.
    double numerator =
        dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    result *= d * c;
    // Odd step.
    numerator = -(a + dm) * (a + b + dm) * x /
                ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    result *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return front * result / a;
}

double StudentTCdf(double t, double dof) {
  if (dof <= 0.0) return 0.5;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

Result<PairedTTestResult> PairedTTest(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired t-test requires equal lengths");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("paired t-test requires n >= 2");
  }
  std::vector<double> differences(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) differences[i] = a[i] - b[i];

  PairedTTestResult result;
  result.mean_difference = Mean(differences);
  const double sd = StdDev(differences);
  result.degrees_of_freedom = static_cast<int>(a.size()) - 1;
  if (sd == 0.0) {
    // All differences identical: t is +/- infinity unless the mean is 0.
    result.t_statistic = result.mean_difference == 0.0
                             ? 0.0
                             : std::copysign(
                                   std::numeric_limits<double>::infinity(),
                                   result.mean_difference);
    result.cohens_d = result.t_statistic == 0.0
                          ? 0.0
                          : std::copysign(
                                std::numeric_limits<double>::infinity(),
                                result.mean_difference);
    result.p_value = result.t_statistic == 0.0 ? 1.0 : 0.0;
    return result;
  }
  const double n = static_cast<double>(a.size());
  result.t_statistic = result.mean_difference / (sd / std::sqrt(n));
  result.cohens_d = result.mean_difference / sd;
  const double cdf = StudentTCdf(std::fabs(result.t_statistic),
                                 static_cast<double>(
                                     result.degrees_of_freedom));
  result.p_value = 2.0 * (1.0 - cdf);
  result.p_value = std::clamp(result.p_value, 0.0, 1.0);
  return result;
}

double AveragePrecisionAtK(const std::vector<bool>& ranked, std::size_t k,
                           std::size_t num_relevant) {
  if (num_relevant == 0) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  double precision_sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    if (ranked[i]) {
      ++hits;
      precision_sum +=
          static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const double normalizer =
      static_cast<double>(std::min(k, num_relevant));
  return precision_sum / normalizer;
}

double NdcgAtK(const std::vector<bool>& ranked, std::size_t k,
               std::size_t num_relevant) {
  if (num_relevant == 0) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  double dcg = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    if (ranked[i]) dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  double ideal = 0.0;
  const std::size_t ideal_depth = std::min(k, num_relevant);
  for (std::size_t i = 0; i < ideal_depth; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal == 0.0 ? 0.0 : dcg / ideal;
}

Result<double> CohensKappa(const BinaryConfusion& confusion) {
  const double total = static_cast<double>(confusion.Total());
  if (total == 0.0) {
    return Status::InvalidArgument("kappa of empty confusion matrix");
  }
  const double observed =
      (static_cast<double>(confusion.both_positive) +
       static_cast<double>(confusion.both_negative)) /
      total;
  const double first_positive =
      (static_cast<double>(confusion.both_positive) +
       static_cast<double>(confusion.only_first)) /
      total;
  const double second_positive =
      (static_cast<double>(confusion.both_positive) +
       static_cast<double>(confusion.only_second)) /
      total;
  const double expected = first_positive * second_positive +
                          (1.0 - first_positive) * (1.0 - second_positive);
  if (expected >= 1.0) return 1.0;  // Degenerate: all same label.
  return (observed - expected) / (1.0 - expected);
}

Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("correlation requires equal lengths");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("correlation requires n >= 2");
  }
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  double covariance = 0.0;
  double variance_a = 0.0;
  double variance_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    covariance += da * db;
    variance_a += da * da;
    variance_b += db * db;
  }
  if (variance_a <= 0.0 || variance_b <= 0.0) {
    return Status::InvalidArgument("correlation of a constant sample");
  }
  return covariance / std::sqrt(variance_a * variance_b);
}

double RegularizedLowerGamma(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (a <= 0.0) return 1.0;
  const double log_gamma = std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = x^a e^-x / Gamma(a) * sum x^n / (a)_(n+1).
    double term = 1.0 / a;
    double sum = term;
    for (int n = 1; n < 500; ++n) {
      term *= x / (a + static_cast<double>(n));
      sum += term;
      if (term < sum * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma);
  }
  // Continued fraction for Q(a,x) (modified Lentz).
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma) * h;
  return 1.0 - q;
}

double ChiSquareCdf(double x, double dof) {
  if (x <= 0.0) return 0.0;
  return RegularizedLowerGamma(dof / 2.0, x / 2.0);
}

Result<LjungBoxResult> LjungBoxTest(const std::vector<double>& residuals,
                                    int lags, int fitted_parameters) {
  if (lags <= 0) {
    return Status::InvalidArgument("lags must be positive");
  }
  std::vector<double> usable;
  usable.reserve(residuals.size());
  for (double value : residuals) {
    if (!std::isnan(value)) usable.push_back(value);
  }
  const int n = static_cast<int>(usable.size());
  if (n <= lags + 1) {
    return Status::InvalidArgument(
        "need more residuals than lags for Ljung-Box");
  }
  const double mean = Mean(usable);
  double denominator = 0.0;
  for (double value : usable) {
    denominator += (value - mean) * (value - mean);
  }
  if (denominator <= 0.0) {
    return Status::InvalidArgument("residuals are constant");
  }

  LjungBoxResult result;
  result.lags_used = lags;
  double q = 0.0;
  for (int k = 1; k <= lags; ++k) {
    double autocovariance = 0.0;
    for (int t = k; t < n; ++t) {
      autocovariance += (usable[t] - mean) * (usable[t - k] - mean);
    }
    const double rho = autocovariance / denominator;
    q += rho * rho / static_cast<double>(n - k);
  }
  q *= static_cast<double>(n) * (static_cast<double>(n) + 2.0);
  result.q_statistic = q;
  const double dof =
      std::max(1.0, static_cast<double>(lags - fitted_parameters));
  result.p_value = 1.0 - ChiSquareCdf(q, dof);
  return result;
}

Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Wilcoxon requires equal lengths");
  }
  // Non-zero differences with |diff| ranks (average ranks for ties).
  struct Entry {
    double magnitude;
    bool positive;
  };
  std::vector<Entry> entries;
  entries.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    if (diff != 0.0) {
      entries.push_back({std::fabs(diff), diff > 0.0});
    }
  }
  const int n = static_cast<int>(entries.size());
  if (n < 5) {
    return Status::InvalidArgument(
        "Wilcoxon needs at least 5 non-zero differences");
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) {
              return x.magnitude < y.magnitude;
            });

  WilcoxonResult result;
  result.effective_n = n;
  double tie_correction = 0.0;
  double w_positive = 0.0;
  for (int i = 0; i < n;) {
    int j = i;
    while (j < n && entries[j].magnitude == entries[i].magnitude) ++j;
    const double tied = static_cast<double>(j - i);
    const double average_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (int k = i; k < j; ++k) {
      if (entries[k].positive) w_positive += average_rank;
    }
    tie_correction += tied * tied * tied - tied;
    i = j;
  }
  result.w_statistic = w_positive;

  const double dn = static_cast<double>(n);
  const double mean = dn * (dn + 1.0) / 4.0;
  const double variance =
      dn * (dn + 1.0) * (2.0 * dn + 1.0) / 24.0 - tie_correction / 48.0;
  if (variance <= 0.0) {
    return Status::InvalidArgument("degenerate Wilcoxon variance");
  }
  // Continuity-corrected normal approximation.
  const double numerator = w_positive - mean;
  const double correction =
      numerator > 0.5 ? -0.5 : (numerator < -0.5 ? 0.5 : -numerator);
  result.z_statistic = (numerator + correction) / std::sqrt(variance);
  // Two-sided p via the normal CDF (t with huge dof).
  const double cdf = StudentTCdf(std::fabs(result.z_statistic), 1e9);
  result.p_value = std::clamp(2.0 * (1.0 - cdf), 0.0, 1.0);
  return result;
}

}  // namespace mic::stats
