#include "mic/filter.h"

#include <algorithm>
#include <unordered_set>

namespace mic {
namespace {

template <typename Id>
std::unordered_set<Id> RareIds(const FrequencyMap<Id>& freq,
                               std::uint64_t min_count) {
  std::unordered_set<Id> rare;
  for (const auto& [id, count] : freq) {
    if (count < min_count) rare.insert(id);
  }
  return rare;
}

template <typename Id>
std::size_t PruneBag(const std::unordered_set<Id>& rare,
                     std::vector<IdCount<Id>>& bag) {
  const std::size_t before = bag.size();
  bag.erase(std::remove_if(bag.begin(), bag.end(),
                           [&rare](const IdCount<Id>& entry) {
                             return rare.count(entry.id) > 0;
                           }),
            bag.end());
  return before - bag.size();
}

}  // namespace

FilterReport FilterMonth(const FilterOptions& options, MonthlyDataset& month) {
  FilterReport report;
  const auto rare_diseases =
      RareIds(month.DiseaseFrequencies(), options.min_disease_count);
  const auto rare_medicines =
      RareIds(month.MedicineFrequencies(), options.min_medicine_count);
  report.diseases_removed = rare_diseases.size();
  report.medicines_removed = rare_medicines.size();

  auto& records = month.mutable_records();
  for (auto& record : records) {
    PruneBag(rare_diseases, record.diseases);
    PruneBag(rare_medicines, record.medicines);
  }
  if (options.drop_empty_records) {
    const std::size_t before = records.size();
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [](const MicRecord& record) {
                                   return record.diseases.empty() ||
                                          record.medicines.empty();
                                 }),
                  records.end());
    report.records_dropped = before - records.size();
  }
  return report;
}

FilterReport FilterCorpus(const FilterOptions& options, MicCorpus& corpus) {
  FilterReport total;
  for (std::size_t t = 0; t < corpus.num_months(); ++t) {
    const FilterReport report = FilterMonth(options, corpus.mutable_month(t));
    total.diseases_removed += report.diseases_removed;
    total.medicines_removed += report.medicines_removed;
    total.records_dropped += report.records_dropped;
  }
  return total;
}

}  // namespace mic
