// Frequency-based pruning applied before model fitting (paper §VI):
// diseases and medicines appearing fewer than `min_count` times within a
// month are removed from that month's records, as in the topic-modeling
// literature the paper follows.

#ifndef MICTREND_MIC_FILTER_H_
#define MICTREND_MIC_FILTER_H_

#include <cstdint>

#include "mic/dataset.h"

namespace mic {

struct FilterOptions {
  /// Minimum per-month multiplicity for a disease to be kept (paper: 5).
  std::uint64_t min_disease_count = 5;
  /// Minimum per-month multiplicity for a medicine to be kept (paper: 5).
  std::uint64_t min_medicine_count = 5;
  /// Drop records left with no disease or no medicine after pruning:
  /// they carry no information for the medication model.
  bool drop_empty_records = true;
};

/// Statistics of one filtering pass.
struct FilterReport {
  std::size_t diseases_removed = 0;
  std::size_t medicines_removed = 0;
  std::size_t records_dropped = 0;
};

/// Prunes one month in place and reports what was removed.
FilterReport FilterMonth(const FilterOptions& options,
                         MonthlyDataset& month);

/// Prunes every month of `corpus` in place; returns aggregate counts.
FilterReport FilterCorpus(const FilterOptions& options, MicCorpus& corpus);

}  // namespace mic

#endif  // MICTREND_MIC_FILTER_H_
