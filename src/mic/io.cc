#include "mic/io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace mic {
namespace {

constexpr char kRecordHeader[] = "month,hospital,patient,diseases,medicines";

template <typename Id>
std::string FormatBag(const std::vector<IdCount<Id>>& bag,
                      const Vocabulary<Id>& vocab) {
  std::string out;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    if (i > 0) out += ';';
    out += vocab.Name(bag[i].id);
    if (bag[i].count != 1) {
      out += ':';
      out += std::to_string(bag[i].count);
    }
  }
  return out;
}

template <typename Id>
Status ParseBag(std::string_view field, Vocabulary<Id>& vocab,
                std::vector<IdCount<Id>>& bag) {
  if (StripWhitespace(field).empty()) return Status::OK();
  for (const std::string& entry : Split(field, ';')) {
    const auto parts = Split(entry, ':');
    if (parts.empty() || parts.size() > 2) {
      return Status::InvalidArgument("malformed bag entry: '" + entry + "'");
    }
    std::uint32_t count = 1;
    if (parts.size() == 2) {
      MIC_ASSIGN_OR_RETURN(std::int64_t parsed, ParseInt64(parts[1]));
      if (parsed <= 0) {
        return Status::InvalidArgument("non-positive multiplicity in '" +
                                       entry + "'");
      }
      count = static_cast<std::uint32_t>(parsed);
    }
    const std::string_view name = StripWhitespace(parts[0]);
    if (name.empty()) {
      return Status::InvalidArgument("empty name in bag entry: '" + entry +
                                     "'");
    }
    bag.push_back({vocab.Intern(name), count});
  }
  return Status::OK();
}

}  // namespace

Status WriteCorpusCsv(const MicCorpus& corpus, std::ostream& out) {
  out << kRecordHeader << "\n";
  const Catalog& catalog = corpus.catalog();
  for (const auto& month : corpus.months()) {
    for (const auto& record : month.records()) {
      out << month.month() << ','
          << catalog.hospitals().Name(record.hospital) << ','
          << catalog.patients().Name(record.patient) << ','
          << FormatBag(record.diseases, catalog.diseases()) << ','
          << FormatBag(record.medicines, catalog.medicines()) << "\n";
    }
  }
  if (!out.good()) return Status::IoError("stream failure writing corpus");
  return Status::OK();
}

Status WriteCorpusCsvFile(const MicCorpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteCorpusCsv(corpus, out);
}

Result<MicCorpus> ReadCorpusCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) ||
      StripWhitespace(line) != kRecordHeader) {
    return Status::InvalidArgument(
        std::string("expected header '") + kRecordHeader + "'");
  }
  MicCorpus corpus;
  Catalog& catalog = corpus.catalog();
  std::vector<MonthlyDataset> months;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != 5) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected 5 fields, got " +
          std::to_string(fields.size()));
    }
    MIC_ASSIGN_OR_RETURN(std::int64_t month_value, ParseInt64(fields[0]));
    if (month_value < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": negative month index");
    }
    const auto month = static_cast<std::size_t>(month_value);
    while (months.size() <= month) {
      months.emplace_back(static_cast<MonthIndex>(months.size()));
    }
    MicRecord record;
    record.hospital = catalog.hospitals().Intern(StripWhitespace(fields[1]));
    record.patient = catalog.patients().Intern(StripWhitespace(fields[2]));
    MIC_RETURN_IF_ERROR(
        ParseBag(fields[3], catalog.diseases(), record.diseases));
    MIC_RETURN_IF_ERROR(
        ParseBag(fields[4], catalog.medicines(), record.medicines));
    record.Normalize();
    months[month].AddRecord(std::move(record));
  }
  for (auto& month : months) {
    MIC_RETURN_IF_ERROR(corpus.AddMonth(std::move(month)));
  }
  return corpus;
}

Result<MicCorpus> ReadCorpusCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadCorpusCsv(in);
}

Status WriteHospitalsCsv(const Catalog& catalog, std::ostream& out) {
  out << "hospital,city,beds\n";
  for (std::uint32_t i = 0; i < catalog.hospitals().size(); ++i) {
    const HospitalId id(i);
    auto info = catalog.GetHospitalInfo(id);
    if (!info.ok()) continue;
    out << catalog.hospitals().Name(id) << ','
        << catalog.cities().Name(info->city) << ',' << info->beds << "\n";
  }
  if (!out.good()) return Status::IoError("stream failure writing hospitals");
  return Status::OK();
}

Status ReadHospitalsCsv(std::istream& in, Catalog& catalog) {
  std::string line;
  if (!std::getline(in, line) ||
      StripWhitespace(line) != std::string_view("hospital,city,beds")) {
    return Status::InvalidArgument("expected header 'hospital,city,beds'");
  }
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected 3 fields");
    }
    const HospitalId hospital =
        catalog.hospitals().Intern(StripWhitespace(fields[0]));
    HospitalInfo info;
    info.city = catalog.cities().Intern(StripWhitespace(fields[1]));
    MIC_ASSIGN_OR_RETURN(std::int64_t beds, ParseInt64(fields[2]));
    if (beds < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": negative bed count");
    }
    info.beds = static_cast<std::uint32_t>(beds);
    catalog.SetHospitalInfo(hospital, info);
  }
  return Status::OK();
}

}  // namespace mic
