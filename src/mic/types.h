// Strongly typed identifiers for the MIC data model.
//
// Diseases, medicines, hospitals, and patients are interned into dense
// integer ids (see catalog.h); the phantom Tag parameter prevents mixing
// id spaces at compile time.

#ifndef MICTREND_MIC_TYPES_H_
#define MICTREND_MIC_TYPES_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace mic {

/// Dense id in one interned vocabulary. Tag is a phantom type.
template <typename Tag>
class TypedId {
 public:
  using ValueType = std::uint32_t;
  static constexpr ValueType kInvalidValue = 0xFFFFFFFFu;

  constexpr TypedId() = default;
  constexpr explicit TypedId(ValueType value) : value_(value) {}

  constexpr ValueType value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value_ < b.value_;
  }

 private:
  ValueType value_ = kInvalidValue;
};

struct DiseaseTag {};
struct MedicineTag {};
struct HospitalTag {};
struct PatientTag {};
struct CityTag {};

using DiseaseId = TypedId<DiseaseTag>;
using MedicineId = TypedId<MedicineTag>;
using HospitalId = TypedId<HospitalTag>;
using PatientId = TypedId<PatientTag>;
using CityId = TypedId<CityTag>;

/// Zero-based month offset from the start of the observation window.
using MonthIndex = std::int32_t;

/// An id together with its multiplicity inside one MIC record (e.g. a
/// disease diagnosed N_rd times, a medicine prescribed k times).
template <typename Id>
struct IdCount {
  Id id;
  std::uint32_t count = 0;

  friend bool operator==(const IdCount&, const IdCount&) = default;
};

using DiseaseCount = IdCount<DiseaseId>;
using MedicineCount = IdCount<MedicineId>;

}  // namespace mic

namespace std {

template <typename Tag>
struct hash<mic::TypedId<Tag>> {
  size_t operator()(mic::TypedId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

}  // namespace std

#endif  // MICTREND_MIC_TYPES_H_
