// Interned vocabularies for diseases, medicines, hospitals, and cities.

#ifndef MICTREND_MIC_CATALOG_H_
#define MICTREND_MIC_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mic/types.h"

namespace mic {

/// Bidirectional name <-> dense id mapping for one id space.
template <typename Id>
class Vocabulary {
 public:
  /// Returns the id for `name`, interning it if new.
  Id Intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    const Id id(static_cast<typename Id::ValueType>(names_.size()));
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` or NotFound without interning.
  Result<Id> Lookup(std::string_view name) const {
    auto it = index_.find(std::string(name));
    if (it == index_.end()) {
      return Status::NotFound("unknown name: '" + std::string(name) + "'");
    }
    return it->second;
  }

  /// Name for a valid id.
  const std::string& Name(Id id) const { return names_.at(id.value()); }

  bool Contains(Id id) const { return id.value() < names_.size(); }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Id> index_;
};

/// Static attributes of one hospital (used by the geographic-spread and
/// hospital-gap applications).
struct HospitalInfo {
  CityId city;
  /// Number of beds; the paper buckets [0,20) small, [20,400) medium,
  /// [400,inf) large.
  std::uint32_t beds = 0;
};

/// Paper §VII-C size classes.
enum class HospitalClass : int { kSmall = 0, kMedium = 1, kLarge = 2 };

/// Maps a bed count to its paper size class.
inline HospitalClass ClassifyHospital(std::uint32_t beds) {
  if (beds < 20) return HospitalClass::kSmall;
  if (beds < 400) return HospitalClass::kMedium;
  return HospitalClass::kLarge;
}

/// Stable display name for a hospital class.
std::string_view HospitalClassName(HospitalClass hospital_class);

/// All vocabularies plus hospital attributes for one corpus.
class Catalog {
 public:
  Vocabulary<DiseaseId>& diseases() { return diseases_; }
  const Vocabulary<DiseaseId>& diseases() const { return diseases_; }
  Vocabulary<MedicineId>& medicines() { return medicines_; }
  const Vocabulary<MedicineId>& medicines() const { return medicines_; }
  Vocabulary<HospitalId>& hospitals() { return hospitals_; }
  const Vocabulary<HospitalId>& hospitals() const { return hospitals_; }
  Vocabulary<CityId>& cities() { return cities_; }
  const Vocabulary<CityId>& cities() const { return cities_; }
  Vocabulary<PatientId>& patients() { return patients_; }
  const Vocabulary<PatientId>& patients() const { return patients_; }

  /// Registers (or updates) hospital attributes.
  void SetHospitalInfo(HospitalId id, HospitalInfo info);

  /// Attributes for a registered hospital; NotFound otherwise.
  Result<HospitalInfo> GetHospitalInfo(HospitalId id) const;

 private:
  Vocabulary<DiseaseId> diseases_;
  Vocabulary<MedicineId> medicines_;
  Vocabulary<HospitalId> hospitals_;
  Vocabulary<CityId> cities_;
  Vocabulary<PatientId> patients_;
  std::vector<HospitalInfo> hospital_info_;
  std::vector<bool> hospital_info_set_;
};

}  // namespace mic

#endif  // MICTREND_MIC_CATALOG_H_
