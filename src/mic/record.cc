#include "mic/record.h"

#include <algorithm>

namespace mic {
namespace {

template <typename Id>
void NormalizeBag(std::vector<IdCount<Id>>& bag) {
  std::sort(bag.begin(), bag.end(),
            [](const IdCount<Id>& a, const IdCount<Id>& b) {
              return a.id < b.id;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    if (out > 0 && bag[out - 1].id == bag[i].id) {
      bag[out - 1].count += bag[i].count;
    } else {
      bag[out++] = bag[i];
    }
  }
  bag.resize(out);
}

}  // namespace

void MicRecord::Normalize() {
  NormalizeBag(diseases);
  NormalizeBag(medicines);
}

}  // namespace mic
