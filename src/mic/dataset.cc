#include "mic/dataset.h"

namespace mic {

FrequencyMap<DiseaseId> MonthlyDataset::DiseaseFrequencies() const {
  FrequencyMap<DiseaseId> freq;
  for (const auto& record : records_) {
    for (const auto& entry : record.diseases) {
      freq[entry.id] += entry.count;
    }
  }
  return freq;
}

FrequencyMap<MedicineId> MonthlyDataset::MedicineFrequencies() const {
  FrequencyMap<MedicineId> freq;
  for (const auto& record : records_) {
    for (const auto& entry : record.medicines) {
      freq[entry.id] += entry.count;
    }
  }
  return freq;
}

std::size_t MonthlyDataset::CountDistinctDiseases() const {
  return DiseaseFrequencies().size();
}

std::size_t MonthlyDataset::CountDistinctMedicines() const {
  return MedicineFrequencies().size();
}

double MonthlyDataset::MeanDiseasesPerRecord() const {
  if (records_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& record : records_) total += record.TotalDiseaseMentions();
  return static_cast<double>(total) / static_cast<double>(records_.size());
}

double MonthlyDataset::MeanMedicinesPerRecord() const {
  if (records_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& record : records_) {
    total += record.TotalMedicineMentions();
  }
  return static_cast<double>(total) / static_cast<double>(records_.size());
}

Status MicCorpus::AddMonth(MonthlyDataset month) {
  const MonthIndex expected = static_cast<MonthIndex>(months_.size());
  if (month.month() != expected) {
    return Status::InvalidArgument(
        "months must be appended consecutively: expected index " +
        std::to_string(expected) + ", got " + std::to_string(month.month()));
  }
  months_.push_back(std::move(month));
  return Status::OK();
}

std::size_t MicCorpus::TotalRecords() const {
  std::size_t total = 0;
  for (const auto& month : months_) total += month.size();
  return total;
}

}  // namespace mic
