// Corpus-level descriptive statistics — the quantities the paper's §VI
// reports for its dataset (monthly means of institutions, patients,
// records, distinct diseases/medicines, and the per-record bag sizes
// whose magnitude motivates the missing-link problem).

#ifndef MICTREND_MIC_SUMMARY_H_
#define MICTREND_MIC_SUMMARY_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "mic/dataset.h"

namespace mic {

struct CorpusSummary {
  std::size_t num_months = 0;
  std::size_t total_records = 0;
  /// Monthly means over non-empty months.
  double mean_records_per_month = 0.0;
  double mean_hospitals_per_month = 0.0;
  double mean_patients_per_month = 0.0;
  double mean_distinct_diseases_per_month = 0.0;
  double mean_distinct_medicines_per_month = 0.0;
  /// Record-level means over all records (paper: 7.435 and 4.788).
  double mean_diseases_per_record = 0.0;
  double mean_medicines_per_record = 0.0;
};

/// Computes the summary; fails on a corpus with no records.
Result<CorpusSummary> SummarizeCorpus(const MicCorpus& corpus);

/// Renders the summary as aligned text lines.
std::string FormatCorpusSummary(const CorpusSummary& summary);

}  // namespace mic

#endif  // MICTREND_MIC_SUMMARY_H_
