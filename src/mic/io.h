// CSV import/export for MIC corpora.
//
// Line format (header line required):
//   month,hospital,patient,diseases,medicines
// where `diseases` / `medicines` are ';'-separated "name:count" entries
// ("name" alone means count 1). Hospital attributes travel in a separate
// file: hospital,city,beds.

#ifndef MICTREND_MIC_IO_H_
#define MICTREND_MIC_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "mic/dataset.h"

namespace mic {

/// Writes `corpus` records as CSV to `out`.
Status WriteCorpusCsv(const MicCorpus& corpus, std::ostream& out);
/// Writes `corpus` records as CSV to the file at `path`.
Status WriteCorpusCsvFile(const MicCorpus& corpus, const std::string& path);

/// Parses a corpus from CSV. Months absent from the input become empty
/// datasets so month indices stay consecutive.
Result<MicCorpus> ReadCorpusCsv(std::istream& in);
Result<MicCorpus> ReadCorpusCsvFile(const std::string& path);

/// Writes hospital attributes (hospital,city,beds) to `out`.
Status WriteHospitalsCsv(const Catalog& catalog, std::ostream& out);

/// Reads hospital attributes into `catalog` (interning names).
Status ReadHospitalsCsv(std::istream& in, Catalog& catalog);

}  // namespace mic

#endif  // MICTREND_MIC_IO_H_
