#include "mic/catalog.h"

namespace mic {

std::string_view HospitalClassName(HospitalClass hospital_class) {
  switch (hospital_class) {
    case HospitalClass::kSmall:
      return "small";
    case HospitalClass::kMedium:
      return "medium";
    case HospitalClass::kLarge:
      return "large";
  }
  return "?";
}

void Catalog::SetHospitalInfo(HospitalId id, HospitalInfo info) {
  if (id.value() >= hospital_info_.size()) {
    hospital_info_.resize(id.value() + 1);
    hospital_info_set_.resize(id.value() + 1, false);
  }
  hospital_info_[id.value()] = info;
  hospital_info_set_[id.value()] = true;
}

Result<HospitalInfo> Catalog::GetHospitalInfo(HospitalId id) const {
  if (id.value() >= hospital_info_.size() ||
      !hospital_info_set_[id.value()]) {
    return Status::NotFound("no attributes registered for hospital id " +
                            std::to_string(id.value()));
  }
  return hospital_info_[id.value()];
}

}  // namespace mic
