#include "mic/summary.h"

#include <unordered_set>

#include "common/strings.h"

namespace mic {

Result<CorpusSummary> SummarizeCorpus(const MicCorpus& corpus) {
  CorpusSummary summary;
  summary.num_months = corpus.num_months();
  summary.total_records = corpus.TotalRecords();
  if (summary.total_records == 0) {
    return Status::InvalidArgument("corpus has no records");
  }

  std::size_t nonempty_months = 0;
  std::uint64_t disease_mentions = 0;
  std::uint64_t medicine_mentions = 0;
  for (std::size_t t = 0; t < corpus.num_months(); ++t) {
    const MonthlyDataset& month = corpus.month(t);
    if (month.empty()) continue;
    ++nonempty_months;
    summary.mean_records_per_month += static_cast<double>(month.size());
    std::unordered_set<HospitalId> hospitals;
    std::unordered_set<PatientId> patients;
    for (const MicRecord& record : month.records()) {
      hospitals.insert(record.hospital);
      patients.insert(record.patient);
      disease_mentions += record.TotalDiseaseMentions();
      medicine_mentions += record.TotalMedicineMentions();
    }
    summary.mean_hospitals_per_month +=
        static_cast<double>(hospitals.size());
    summary.mean_patients_per_month +=
        static_cast<double>(patients.size());
    summary.mean_distinct_diseases_per_month +=
        static_cast<double>(month.CountDistinctDiseases());
    summary.mean_distinct_medicines_per_month +=
        static_cast<double>(month.CountDistinctMedicines());
  }
  const double months = static_cast<double>(nonempty_months);
  summary.mean_records_per_month /= months;
  summary.mean_hospitals_per_month /= months;
  summary.mean_patients_per_month /= months;
  summary.mean_distinct_diseases_per_month /= months;
  summary.mean_distinct_medicines_per_month /= months;
  summary.mean_diseases_per_record =
      static_cast<double>(disease_mentions) /
      static_cast<double>(summary.total_records);
  summary.mean_medicines_per_record =
      static_cast<double>(medicine_mentions) /
      static_cast<double>(summary.total_records);
  return summary;
}

std::string FormatCorpusSummary(const CorpusSummary& summary) {
  std::string out;
  out += StrFormat("months:                        %zu\n",
                   summary.num_months);
  out += StrFormat("total records:                 %zu\n",
                   summary.total_records);
  out += StrFormat("mean records / month:          %.1f\n",
                   summary.mean_records_per_month);
  out += StrFormat("mean hospitals / month:        %.1f\n",
                   summary.mean_hospitals_per_month);
  out += StrFormat("mean patients / month:         %.1f\n",
                   summary.mean_patients_per_month);
  out += StrFormat("mean distinct diseases / month: %.1f\n",
                   summary.mean_distinct_diseases_per_month);
  out += StrFormat("mean distinct medicines / month: %.1f\n",
                   summary.mean_distinct_medicines_per_month);
  out += StrFormat("mean diseases / record:        %.3f\n",
                   summary.mean_diseases_per_record);
  out += StrFormat("mean medicines / record:       %.3f\n",
                   summary.mean_medicines_per_record);
  return out;
}

}  // namespace mic
