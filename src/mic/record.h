// MicRecord: one monthly claim for one patient at one institution.
//
// Per the paper (§III-A), a record carries a *bag* of diagnosed diseases
// and a *bag* of prescribed medicines with no links between them; the
// medication model (src/medmodel) recovers those links.

#ifndef MICTREND_MIC_RECORD_H_
#define MICTREND_MIC_RECORD_H_

#include <cstdint>
#include <vector>

#include "mic/types.h"

namespace mic {

/// One MIC record: (hospital, patient, d_r, m_r) for one month.
/// Bags are stored as (id, multiplicity) pairs sorted by id.
struct MicRecord {
  HospitalId hospital;
  PatientId patient;
  /// Diseases diagnosed this month with multiplicities (N_rd).
  std::vector<DiseaseCount> diseases;
  /// Medicines prescribed this month with multiplicities.
  std::vector<MedicineCount> medicines;

  /// N_r: total disease mentions (sum of multiplicities).
  std::uint32_t TotalDiseaseMentions() const {
    std::uint32_t total = 0;
    for (const auto& entry : diseases) total += entry.count;
    return total;
  }

  /// L_r: total medicine prescriptions (sum of multiplicities).
  std::uint32_t TotalMedicineMentions() const {
    std::uint32_t total = 0;
    for (const auto& entry : medicines) total += entry.count;
    return total;
  }

  /// Sorts both bags by id and merges duplicate entries. Call after
  /// constructing a record from unordered events.
  void Normalize();

  /// Field-wise equality; the store's round-trip tests compare whole
  /// record vectors against the imported corpus.
  friend bool operator==(const MicRecord&, const MicRecord&) = default;
};

}  // namespace mic

#endif  // MICTREND_MIC_RECORD_H_
