// MonthlyDataset (R^(t)) and MicCorpus (the full T-month collection).

#ifndef MICTREND_MIC_DATASET_H_
#define MICTREND_MIC_DATASET_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mic/catalog.h"
#include "mic/record.h"
#include "mic/types.h"

namespace mic {

/// Marginal frequency table for one month: id -> total multiplicity.
template <typename Id>
using FrequencyMap = std::unordered_map<Id, std::uint64_t>;

/// All MIC records created in one calendar month.
class MonthlyDataset {
 public:
  MonthlyDataset() = default;
  explicit MonthlyDataset(MonthIndex month) : month_(month) {}

  MonthIndex month() const { return month_; }
  void set_month(MonthIndex month) { month_ = month; }

  void AddRecord(MicRecord record) {
    records_.push_back(std::move(record));
    content_fingerprint_ = 0;
    has_content_fingerprint_ = false;
  }

  const std::vector<MicRecord>& records() const { return records_; }
  std::vector<MicRecord>& mutable_records() { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Total disease multiplicity per disease id across all records.
  FrequencyMap<DiseaseId> DiseaseFrequencies() const;
  /// Total medicine multiplicity per medicine id across all records.
  FrequencyMap<MedicineId> MedicineFrequencies() const;

  /// Number of distinct diseases appearing this month (D^(t)).
  std::size_t CountDistinctDiseases() const;
  /// Number of distinct medicines appearing this month (M^(t)).
  std::size_t CountDistinctMedicines() const;

  /// Mean disease / medicine mentions per record (the paper reports
  /// 7.435 and 4.788 for its dataset).
  double MeanDiseasesPerRecord() const;
  double MeanMedicinesPerRecord() const;

  /// Content fingerprint stamped by an ingest layer that already knows
  /// this month's digest (the claim store persists it at append time),
  /// letting downstream caching skip re-hashing every record. Cleared
  /// by AddRecord — a mutated month no longer matches its stamp.
  bool has_content_fingerprint() const { return has_content_fingerprint_; }
  std::uint64_t content_fingerprint() const { return content_fingerprint_; }
  void set_content_fingerprint(std::uint64_t fingerprint) {
    content_fingerprint_ = fingerprint;
    has_content_fingerprint_ = true;
  }

 private:
  MonthIndex month_ = 0;
  std::vector<MicRecord> records_;
  std::uint64_t content_fingerprint_ = 0;
  bool has_content_fingerprint_ = false;
};

/// The full corpus: a shared catalog plus T monthly datasets indexed by
/// consecutive MonthIndex values starting at 0.
class MicCorpus {
 public:
  MicCorpus() : catalog_(std::make_shared<Catalog>()) {}
  explicit MicCorpus(std::shared_ptr<Catalog> catalog)
      : catalog_(std::move(catalog)) {}

  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  std::shared_ptr<Catalog> shared_catalog() const { return catalog_; }

  /// Appends a month; months must be added in increasing order starting
  /// at 0 (enforced to keep series indexing trivial).
  Status AddMonth(MonthlyDataset month);

  std::size_t num_months() const { return months_.size(); }
  const MonthlyDataset& month(std::size_t t) const { return months_.at(t); }
  MonthlyDataset& mutable_month(std::size_t t) { return months_.at(t); }
  const std::vector<MonthlyDataset>& months() const { return months_; }

  /// Total records across all months.
  std::size_t TotalRecords() const;

  /// Returns a corpus restricted to records whose hospital satisfies
  /// `predicate` (used by the geographic and hospital-class analyses).
  /// The catalog is shared with this corpus.
  template <typename Predicate>
  MicCorpus FilterByHospital(Predicate predicate) const {
    MicCorpus out(catalog_);
    for (const auto& month : months_) {
      MonthlyDataset filtered(month.month());
      for (const auto& record : month.records()) {
        if (predicate(record.hospital)) filtered.AddRecord(record);
      }
      Status status = out.AddMonth(std::move(filtered));
      (void)status;  // Ordering is preserved by construction.
    }
    return out;
  }

 private:
  std::shared_ptr<Catalog> catalog_;
  std::vector<MonthlyDataset> months_;
};

}  // namespace mic

#endif  // MICTREND_MIC_DATASET_H_
