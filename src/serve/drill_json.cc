#include "serve/drill_json.h"

#include <string>

namespace mic::serve {

JsonValue DrillDownToJson(const trend::DrillDownReport& report) {
  JsonValue nodes = JsonValue::Array();
  for (const trend::DrillNode& node : report.nodes) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue::String(node.name));
    row.Set("parent", JsonValue::Int(node.parent));
    row.Set("depth", JsonValue::Int(node.depth));
    row.Set("leaf", JsonValue::Bool(node.is_leaf));
    row.Set("total", JsonValue::Number(node.total));
    row.Set("change", JsonValue::Bool(node.analysis.has_change));
    row.Set("month", JsonValue::Int(node.analysis.change_point));
    row.Set("lambda", JsonValue::Number(node.analysis.lambda));
    row.Set("criterion", JsonValue::Number(node.analysis.aic));
    row.Set("criterion_no_change",
            JsonValue::Number(node.analysis.aic_without_intervention));
    nodes.Append(std::move(row));
  }
  JsonValue data = JsonValue::Object();
  data.Set("axis",
           JsonValue::String(std::string(DrillAxisName(report.axis))));
  data.Set("months", JsonValue::Int(report.num_months));
  data.Set("nodes", std::move(nodes));
  return data;
}

JsonValue ExplainToJson(const trend::DrillDownReport& report,
                        const trend::ExplainResult& result) {
  JsonValue path = JsonValue::Array();
  for (const trend::ExplainStep& step : result.path) {
    JsonValue row = JsonValue::Object();
    row.Set("node", JsonValue::String(step.node));
    row.Set("delta", JsonValue::Number(step.delta));
    row.Set("share", JsonValue::Number(step.share));
    path.Append(std::move(row));
  }
  JsonValue data = JsonValue::Object();
  data.Set("axis",
           JsonValue::String(std::string(DrillAxisName(report.axis))));
  data.Set("target", JsonValue::String(result.target));
  data.Set("change_month", JsonValue::Int(result.change_month));
  data.Set("delta", JsonValue::Number(result.delta));
  data.Set("min_share", JsonValue::Number(result.min_share));
  data.Set("path", std::move(path));
  data.Set("driver", JsonValue::String(result.driver));
  data.Set("driver_share", JsonValue::Number(result.driver_share));
  return data;
}

}  // namespace mic::serve
