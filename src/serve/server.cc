#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"
#include "obs/trace_log.h"

namespace mic::serve {
namespace {

/// Transport-level error envelope (codes the service layer never
/// produces: frame_too_large, overloaded).
JsonValue TransportError(std::string_view code, std::string message) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(std::string(code)));
  error.Set("message", JsonValue::String(std::move(message)));
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false))
      .Set("error", std::move(error));
  return response;
}

/// Best-effort reply on a path that is closing the connection anyway.
void TryWriteFrame(int fd, const JsonValue& response,
                   std::size_t max_frame_bytes) {
  Status status = WriteFrame(fd, response.Serialize(), max_frame_bytes);
  (void)status;
}

/// Error-envelope code of a response ("" on success envelopes).
std::string ResponseErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  return error == nullptr ? std::string() : error->GetString("code");
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Window channel name for an HTTP target: known endpoints get their
/// own channel, everything else shares "http.other" so arbitrary 404
/// probing cannot grow the channel map without bound.
std::string_view HttpChannelName(std::string_view path) {
  if (path == "/metrics") return "http.metrics";
  if (path == "/healthz") return "http.healthz";
  if (path == "/varz") return "http.varz";
  return "http.other";
}

}  // namespace

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    TrendService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("TcpServer needs a service");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("invalid port " +
                                   std::to_string(options.port));
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be at least 1");
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  const std::string resolved =
      options.host == "localhost" ? "127.0.0.1" : options.host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options.host + "'");
  }
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = std::string("cannot bind ") + resolved +
                                ":" + std::to_string(options.port) + ": " +
                                std::strerror(errno);
    ::close(listen_fd);
    return Status::IoError(message);
  }
  if (::listen(listen_fd, 128) != 0) {
    const std::string message = std::string("listen failed: ") +
                                std::strerror(errno);
    ::close(listen_fd);
    return Status::IoError(message);
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd,
                    reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string message = std::string("getsockname failed: ") +
                                std::strerror(errno);
    ::close(listen_fd);
    return Status::IoError(message);
  }
  const int port = static_cast<int>(ntohs(bound.sin_port));

  ServerOptions clamped = options;
  if (clamped.num_workers > SnapshotHub::kMaxReaders) {
    clamped.num_workers = SnapshotHub::kMaxReaders;
  }
  auto server = std::unique_ptr<TcpServer>(
      new TcpServer(service, clamped, listen_fd, port));
  if (!clamped.access_log_path.empty()) {
    MIC_ASSIGN_OR_RETURN(server->access_log_,
                         AccessLog::Open(clamped.access_log_path));
  }
  // Request-id prefix: low bits of the steady clock, so ids from
  // different daemon runs against the same access log stay distinct.
  server->id_prefix_ = StrFormat(
      "%06llx",
      static_cast<unsigned long long>(
          std::chrono::steady_clock::now().time_since_epoch().count() &
          0xffffff));
  obs::MetricsRegistry* metrics = service->metrics();
  server->overload_rejections_ =
      obs::GetCounter(metrics, "serve.overload_rejections");
  server->rejected_overloaded_ =
      obs::GetCounter(metrics, "serve.rejected.overloaded");
  server->swap_stalls_ = obs::GetCounter(metrics, "serve.swap.stalls");
  server->queue_depth_ = obs::GetGauge(metrics, "serve.queue_depth");
  server->trace_dropped_ = obs::GetGauge(metrics, "obs.trace.dropped");
  server->trace_retained_ = obs::GetGauge(metrics, "obs.trace.retained");
  server->drop_window_ =
      service->windows()->channel("obs.trace.dropped");
  server->workers_.reserve(
      static_cast<std::size_t>(clamped.num_workers));
  for (int i = 0; i < clamped.num_workers; ++i) {
    server->workers_.emplace_back([raw = server.get()] {
      raw->WorkerMain();
    });
  }
  server->watcher_ = std::thread([raw = server.get()] {
    raw->WatchMain();
  });
  return server;
}

TcpServer::TcpServer(TrendService* service, const ServerOptions& options,
                     int listen_fd, int port)
    : service_(service),
      options_(options),
      listen_fd_(listen_fd),
      port_(port) {}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::RequestStop() {
  stop_.store(true, std::memory_order_seq_cst);
  pending_cv_.notify_all();
}

Status TcpServer::Serve(const std::atomic<bool>* external_stop) {
  while (!stop_.load(std::memory_order_seq_cst)) {
    if (service_->shutdown_requested() ||
        (external_stop != nullptr &&
         external_stop->load(std::memory_order_seq_cst))) {
      break;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, options_.limits.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      RequestStop();
      Shutdown();
      return Status::IoError(std::string("accept poll failed: ") +
                             std::strerror(errno));
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      RequestStop();
      Shutdown();
      return Status::IoError(std::string("accept failed: ") +
                             std::strerror(errno));
    }
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() >=
          static_cast<std::size_t>(options_.max_pending)) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      // Two spellings of the same event: serve.rejected.overloaded is
      // the pre-existing name, serve.overload_rejections the SLO-facing
      // one the scrape recipes key on.
      obs::Increment(rejected_overloaded_);
      obs::Increment(overload_rejections_);
      TryWriteFrame(fd,
                    TransportError("overloaded",
                                   "connection queue is full; retry"),
                    options_.limits.max_frame_bytes);
      ::close(fd);
      if (access_log_ != nullptr) {
        AccessRecord record;
        record.id = NextRequestId();
        record.endpoint = "connect";
        record.error = "overloaded";
        access_log_->Write(record);
      }
      continue;
    }
    pending_cv_.notify_one();
  }
  RequestStop();
  Shutdown();
  return Status::OK();
}

void TcpServer::WorkerMain() {
  auto reader = service_->hub().Register();
  if (!reader.ok()) {
    // Start() clamps num_workers to the slot count, so this only
    // happens when something else exhausted the hub; log and bail.
    MIC_LOG(Warning) << "serve worker could not register a snapshot "
                        "reader: "
                     << reader.status();
    return;
  }
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      pending_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_seq_cst) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_seq_cst)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd, *reader);
    ::close(fd);
  }
}

void TcpServer::ServeConnection(int fd, const SnapshotReader& reader) {
  {
    // Peek before any frame read: an HTTP request line parsed as a
    // big-endian frame length would be ~1.2 GB and trip
    // frame_too_large, so the transport decision has to come first.
    Result<bool> is_http = LooksLikeHttp(fd, options_.limits, &stop_);
    if (!is_http.ok()) return;  // clean EOF before four bytes, or stop
    if (*is_http) {
      ServeHttp(fd);
      return;
    }
  }
  obs::TraceLog* trace = service_->trace();
  for (;;) {
    Result<std::string> payload = ReadFrame(fd, options_.limits, &stop_);
    if (!payload.ok()) {
      const Status status = payload.status();
      if (status.code() == StatusCode::kFailedPrecondition &&
          !stop_.load(std::memory_order_seq_cst)) {
        // Oversized frame: a protocol violation worth answering before
        // hanging up (the peer's stream position is unrecoverable).
        TryWriteFrame(fd,
                      TransportError("frame_too_large", status.message()),
                      options_.limits.max_frame_bytes);
        if (access_log_ != nullptr) {
          AccessRecord record;
          record.id = NextRequestId();
          record.endpoint = "frame";
          record.error = "frame_too_large";
          access_log_->Write(record);
        }
      }
      return;  // clean EOF, stop, timeout, or torn frame: just close
    }
    const std::string rid = NextRequestId();
    const std::uint64_t trace_mark =
        trace == nullptr ? 0 : trace->ThreadMark();
    const auto start = std::chrono::steady_clock::now();
    Result<JsonValue> request = JsonValue::Parse(*payload);
    JsonValue response;
    std::string endpoint = "invalid";
    if (!request.ok()) {
      response = TransportError("bad_request", request.status().message());
    } else {
      endpoint = request->GetString("op");
      // Stack-only span: everything the service traces for this
      // request nests under "req/<id>/...", tying the trace ring to
      // the access-log line with the same id.
      obs::Span request_span("req/" + rid);
      response = service_->Handle(*request, reader);
    }
    const std::string body = response.Serialize();
    const Status write_status =
        WriteFrame(fd, body, options_.limits.max_frame_bytes);
    const double seconds = SecondsSince(start);
    if (trace != nullptr && options_.slow_request_threshold_ms > 0 &&
        seconds * 1000.0 >=
            static_cast<double>(options_.slow_request_threshold_ms)) {
      trace->RetainSince(trace_mark, rid);
    }
    if (access_log_ != nullptr) {
      AccessRecord record;
      record.id = rid;
      record.endpoint = endpoint;
      record.ok = response.GetBool("ok", false);
      if (!record.ok) record.error = ResponseErrorCode(response);
      record.latency_seconds = seconds;
      record.version = response.GetInt("version", -1);
      // +4 on each side for the length prefix.
      record.bytes_in = payload->size() + 4;
      record.bytes_out = body.size() + 4;
      access_log_->Write(record);
    }
    if (!write_status.ok()) return;
    if (service_->shutdown_requested()) {
      // The response to the shutdown request is on the wire; let the
      // accept loop and the other workers observe the flag.
      RequestStop();
      return;
    }
  }
}

void TcpServer::ServeHttp(int fd) {
  const auto start = std::chrono::steady_clock::now();
  Result<HttpRequest> request =
      ReadHttpRequest(fd, options_.limits, &stop_);
  if (!request.ok()) {
    (void)SendAll(fd, BuildHttpResponse(400, "Bad Request", "text/plain",
                                        "bad request\n"));
    return;
  }
  const std::string path =
      request->target.substr(0, request->target.find('?'));
  int status = 200;
  std::string_view reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/metrics") {
    content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    body = obs::RenderOpenMetrics(service_->metrics(),
                                  service_->windows());
  } else if (path == "/varz") {
    content_type = "application/json; charset=utf-8";
    body = service_->windows()->ToJson();
    body += '\n';
  } else {
    status = 404;
    reason = "Not Found";
    body = "not found\n";
  }
  const std::string response = BuildHttpResponse(
      status, reason, content_type, body, request->method == "HEAD");
  const Status sent = SendAll(fd, response);
  const double seconds = SecondsSince(start);
  // Scrapes are periodic, so resolving the channel by name per request
  // (one mutex hop) is fine here, unlike the framed hot path.
  obs::Record(service_->windows()->channel(HttpChannelName(path)),
              seconds, status >= 400 || !sent.ok());
  if (access_log_ != nullptr) {
    AccessRecord record;
    record.id = NextRequestId();
    record.transport = "http";
    record.endpoint = path;
    record.ok = status < 400 && sent.ok();
    if (status == 404) record.error = "not_found";
    record.latency_seconds = seconds;
    record.bytes_in = request->bytes;
    record.bytes_out = response.size();
    access_log_->Write(record);
  }
}

void TcpServer::WatchMain() {
  obs::TraceLog* trace = service_->trace();
  obs::WindowRegistry* windows = service_->windows();
  std::uint64_t last_dropped =
      trace == nullptr ? 0 : trace->dropped_count();
  // Swap-start stamp already counted as a stall, so one stuck drain is
  // one serve.swap.stalls increment no matter how long it lasts.
  std::uint64_t counted_stall_stamp = 0;
  const int interval_ms = options_.limits.poll_interval_ms > 0
                              ? options_.limits.poll_interval_ms
                              : 100;
  while (!stop_.load(std::memory_order_seq_cst)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth = pending_.size();
    }
    obs::Set(queue_depth_, static_cast<double>(depth));
    if (trace != nullptr) {
      const std::uint64_t dropped = trace->dropped_count();
      obs::Set(trace_dropped_, static_cast<double>(dropped));
      obs::Set(trace_retained_,
               static_cast<double>(trace->retained_count()));
      if (dropped > last_dropped) {
        obs::AddCount(drop_window_, dropped - last_dropped);
        last_dropped = dropped;
      }
    }
    if (options_.swap_stall_deadline_ms > 0) {
      const std::uint64_t started = service_->swap_started_ns();
      if (started != 0 && started != counted_stall_stamp) {
        const std::uint64_t now = windows->NowNs();
        const std::uint64_t waited_ms =
            now > started ? (now - started) / 1000000ull : 0;
        if (waited_ms >=
            static_cast<std::uint64_t>(options_.swap_stall_deadline_ms)) {
          obs::Increment(swap_stalls_);
          counted_stall_stamp = started;
          MIC_LOG(Warning)
              << "snapshot swap has been draining for " << waited_ms
              << " ms (a reader is likely holding a pin)";
        }
      }
    }
  }
}

std::string TcpServer::NextRequestId() {
  return id_prefix_ + '-' +
         std::to_string(
             request_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void TcpServer::Shutdown() {
  RequestStop();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (watcher_.joinable()) watcher_.join();
  std::deque<int> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(pending_);
  }
  for (const int fd : leftover) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace mic::serve
