#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace mic::serve {
namespace {

/// Transport-level error envelope (codes the service layer never
/// produces: frame_too_large, overloaded).
JsonValue TransportError(std::string_view code, std::string message) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(std::string(code)));
  error.Set("message", JsonValue::String(std::move(message)));
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false))
      .Set("error", std::move(error));
  return response;
}

/// Best-effort reply on a path that is closing the connection anyway.
void TryWriteFrame(int fd, const JsonValue& response,
                   std::size_t max_frame_bytes) {
  Status status = WriteFrame(fd, response.Serialize(), max_frame_bytes);
  (void)status;
}

}  // namespace

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    TrendService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("TcpServer needs a service");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("invalid port " +
                                   std::to_string(options.port));
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be at least 1");
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  const std::string resolved =
      options.host == "localhost" ? "127.0.0.1" : options.host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options.host + "'");
  }
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = std::string("cannot bind ") + resolved +
                                ":" + std::to_string(options.port) + ": " +
                                std::strerror(errno);
    ::close(listen_fd);
    return Status::IoError(message);
  }
  if (::listen(listen_fd, 128) != 0) {
    const std::string message = std::string("listen failed: ") +
                                std::strerror(errno);
    ::close(listen_fd);
    return Status::IoError(message);
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd,
                    reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string message = std::string("getsockname failed: ") +
                                std::strerror(errno);
    ::close(listen_fd);
    return Status::IoError(message);
  }
  const int port = static_cast<int>(ntohs(bound.sin_port));

  ServerOptions clamped = options;
  if (clamped.num_workers > SnapshotHub::kMaxReaders) {
    clamped.num_workers = SnapshotHub::kMaxReaders;
  }
  auto server = std::unique_ptr<TcpServer>(
      new TcpServer(service, clamped, listen_fd, port));
  server->workers_.reserve(
      static_cast<std::size_t>(clamped.num_workers));
  for (int i = 0; i < clamped.num_workers; ++i) {
    server->workers_.emplace_back([raw = server.get()] {
      raw->WorkerMain();
    });
  }
  return server;
}

TcpServer::TcpServer(TrendService* service, const ServerOptions& options,
                     int listen_fd, int port)
    : service_(service),
      options_(options),
      listen_fd_(listen_fd),
      port_(port) {}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::RequestStop() {
  stop_.store(true, std::memory_order_seq_cst);
  pending_cv_.notify_all();
}

Status TcpServer::Serve(const std::atomic<bool>* external_stop) {
  while (!stop_.load(std::memory_order_seq_cst)) {
    if (service_->shutdown_requested() ||
        (external_stop != nullptr &&
         external_stop->load(std::memory_order_seq_cst))) {
      break;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, options_.limits.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      RequestStop();
      Shutdown();
      return Status::IoError(std::string("accept poll failed: ") +
                             std::strerror(errno));
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      RequestStop();
      Shutdown();
      return Status::IoError(std::string("accept failed: ") +
                             std::strerror(errno));
    }
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() >=
          static_cast<std::size_t>(options_.max_pending)) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      obs::Increment(obs::GetCounter(service_->metrics(),
                                     "serve.rejected.overloaded"));
      TryWriteFrame(fd,
                    TransportError("overloaded",
                                   "connection queue is full; retry"),
                    options_.limits.max_frame_bytes);
      ::close(fd);
      continue;
    }
    pending_cv_.notify_one();
  }
  RequestStop();
  Shutdown();
  return Status::OK();
}

void TcpServer::WorkerMain() {
  auto reader = service_->hub().Register();
  if (!reader.ok()) {
    // Start() clamps num_workers to the slot count, so this only
    // happens when something else exhausted the hub; log and bail.
    MIC_LOG(Warning) << "serve worker could not register a snapshot "
                        "reader: "
                     << reader.status();
    return;
  }
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      pending_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_seq_cst) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_seq_cst)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd, *reader);
    ::close(fd);
  }
}

void TcpServer::ServeConnection(int fd, const SnapshotReader& reader) {
  for (;;) {
    Result<std::string> payload = ReadFrame(fd, options_.limits, &stop_);
    if (!payload.ok()) {
      const Status status = payload.status();
      if (status.code() == StatusCode::kFailedPrecondition &&
          !stop_.load(std::memory_order_seq_cst)) {
        // Oversized frame: a protocol violation worth answering before
        // hanging up (the peer's stream position is unrecoverable).
        TryWriteFrame(fd,
                      TransportError("frame_too_large", status.message()),
                      options_.limits.max_frame_bytes);
      }
      return;  // clean EOF, stop, timeout, or torn frame: just close
    }
    Result<JsonValue> request = JsonValue::Parse(*payload);
    JsonValue response;
    if (!request.ok()) {
      response = TransportError("bad_request", request.status().message());
    } else {
      response = service_->Handle(*request, reader);
    }
    if (Status status = WriteFrame(fd, response.Serialize(),
                                   options_.limits.max_frame_bytes);
        !status.ok()) {
      return;
    }
    if (service_->shutdown_requested()) {
      // The response to the shutdown request is on the wire; let the
      // accept loop and the other workers observe the flag.
      RequestStop();
      return;
    }
  }
}

void TcpServer::Shutdown() {
  RequestStop();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::deque<int> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(pending_);
  }
  for (const int fd : leftover) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace mic::serve
