#include "serve/snapshot.h"

#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "store/claim_store.h"
#include "trend/report_io.h"

namespace mic::serve {

// ------------------------------------------------------------ SnapshotReader

SnapshotReader::SnapshotReader(SnapshotReader&& other) noexcept
    : hub_(other.hub_), slot_(other.slot_) {
  other.hub_ = nullptr;
  other.slot_ = -1;
}

SnapshotReader& SnapshotReader::operator=(SnapshotReader&& other) noexcept {
  if (this != &other) {
    if (hub_ != nullptr) hub_->Unregister(slot_);
    hub_ = other.hub_;
    slot_ = other.slot_;
    other.hub_ = nullptr;
    other.slot_ = -1;
  }
  return *this;
}

SnapshotReader::~SnapshotReader() {
  if (hub_ != nullptr) hub_->Unregister(slot_);
}

// --------------------------------------------------------------- SnapshotPin

SnapshotPin::~SnapshotPin() { hub_->ClearPin(slot_); }

// --------------------------------------------------------------- SnapshotHub

SnapshotHub::~SnapshotHub() {
  delete current_.load(std::memory_order_seq_cst);
}

Result<SnapshotReader> SnapshotHub::Register() {
  for (int slot = 0; slot < kMaxReaders; ++slot) {
    bool expected = false;
    if (slots_[slot].claimed.compare_exchange_strong(
            expected, true, std::memory_order_seq_cst)) {
      return SnapshotReader(this, slot);
    }
  }
  return Status::FailedPrecondition(
      "all " + std::to_string(kMaxReaders) +
      " snapshot reader slots are claimed");
}

void SnapshotHub::Unregister(int slot) {
  slots_[slot].pointer.store(nullptr, std::memory_order_seq_cst);
  slots_[slot].claimed.store(false, std::memory_order_seq_cst);
}

SnapshotPin SnapshotHub::Acquire(const SnapshotReader& reader) {
  HazardSlot& slot = slots_[reader.slot_];
  for (;;) {
    const WorldSnapshot* snapshot =
        current_.load(std::memory_order_seq_cst);
    slot.pointer.store(snapshot, std::memory_order_seq_cst);
    if (current_.load(std::memory_order_seq_cst) == snapshot) {
      return SnapshotPin(this, reader.slot_, snapshot);
    }
    // A publish landed between the load and the recheck; retry against
    // the new current. The loop is bounded by the publish rate.
  }
}

void SnapshotHub::ClearPin(int slot) {
  slots_[slot].pointer.store(nullptr, std::memory_order_seq_cst);
}

double SnapshotHub::Publish(const WorldSnapshot* next) {
  const WorldSnapshot* old =
      current_.exchange(next, std::memory_order_seq_cst);
  if (old == nullptr) return 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int slot = 0; slot < kMaxReaders; ++slot) {
    while (slots_[slot].pointer.load(std::memory_order_seq_cst) == old) {
      std::this_thread::yield();
    }
  }
  const auto end = std::chrono::steady_clock::now();
  delete old;
  return std::chrono::duration<double>(end - start).count();
}

// ------------------------------------------------------------- BuildSnapshot

Result<const WorldSnapshot*> BuildSnapshot(
    std::uint64_t version, const store::ClaimStore& store,
    const trend::PipelineConfig& config, const ExecContext& context) {
  auto snapshot = std::make_unique<WorldSnapshot>();
  snapshot->version = version;
  snapshot->store_fingerprint = store.Fingerprint();
  MIC_ASSIGN_OR_RETURN(snapshot->corpus, store.OpenWorld());
  snapshot->months = snapshot->corpus.num_months();
  // The daemon always serves every drill-down axis; request them in
  // DrillAxis order so snapshot->drilldowns is indexable by the axis
  // enum. Each axis builds the same tree as a standalone offline
  // `mictrend drilldown` run with this config (the drill-smoke gate
  // byte-compares the two).
  trend::PipelineConfig drill_config = config;
  drill_config.drilldown_axes = {trend::DrillAxis::kMedicine,
                                 trend::DrillAxis::kDisease,
                                 trend::DrillAxis::kHospital};
  MIC_ASSIGN_OR_RETURN(
      trend::PipelineResult result,
      trend::RunPipeline(snapshot->corpus, drill_config, context));
  snapshot->series = std::move(result.series);
  snapshot->report = std::move(result.report);
  snapshot->drilldowns = std::move(result.drilldowns);
  snapshot->analyzer = trend::TrendAnalyzer(config.analyzer);
  std::ostringstream csv;
  MIC_RETURN_IF_ERROR(trend::WriteReportCsv(snapshot->report,
                                            snapshot->analyzer,
                                            snapshot->corpus.catalog(),
                                            csv));
  snapshot->report_csv = csv.str();
  return snapshot.release();
}

}  // namespace mic::serve
