#include "serve/http.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace mic::serve {
namespace {

constexpr std::size_t kMaxHeadBytes = 8192;

bool Stopped(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_seq_cst);
}

/// Waits for readability within the poll cadence. OK(true) = readable,
/// OK(false) = keep waiting, error = stop/poll failure.
Result<bool> WaitReadable(int fd, const WireLimits& limits,
                          const std::atomic<bool>* stop) {
  if (Stopped(stop)) {
    return Status::FailedPrecondition("server is stopping");
  }
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int ready = ::poll(&pfd, 1, limits.poll_interval_ms);
  if (ready < 0) {
    if (errno == EINTR) return false;
    return Status::IoError(std::string("poll failed: ") +
                           std::strerror(errno));
  }
  return ready > 0;
}

}  // namespace

Result<bool> LooksLikeHttp(int fd, const WireLimits& limits,
                           const std::atomic<bool>* stop) {
  char head[4];
  for (;;) {
    MIC_ASSIGN_OR_RETURN(const bool readable,
                         WaitReadable(fd, limits, stop));
    if (!readable) continue;
    const ssize_t n = ::recv(fd, head, sizeof(head), MSG_PEEK);
    if (n == 0) return Status::NotFound("connection closed");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (static_cast<std::size_t>(n) < sizeof(head)) {
      // Fewer than four bytes buffered so far; peek again once more
      // arrive (both a frame prefix and a request line are longer).
      continue;
    }
    return std::memcmp(head, "GET ", 4) == 0 ||
           std::memcmp(head, "HEAD", 4) == 0;
  }
}

Result<HttpRequest> ReadHttpRequest(int fd, const WireLimits& limits,
                                    const std::atomic<bool>* stop) {
  std::string head;
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() >= kMaxHeadBytes) {
      return Status::FailedPrecondition(
          "HTTP request head exceeds " + std::to_string(kMaxHeadBytes) +
          " bytes");
    }
    MIC_ASSIGN_OR_RETURN(const bool readable,
                         WaitReadable(fd, limits, stop));
    if (!readable) continue;
    char buffer[1024];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      return Status::FailedPrecondition(
          "connection closed mid HTTP request");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    head.append(buffer, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = head.find("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const std::size_t method_end = request_line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos
          ? std::string::npos
          : request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos ||
      target_end == std::string::npos) {
    return Status::FailedPrecondition("malformed HTTP request line '" +
                                      request_line + "'");
  }
  HttpRequest request;
  request.method = request_line.substr(0, method_end);
  request.target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  request.bytes = head.size();
  if (request.method != "GET" && request.method != "HEAD") {
    return Status::FailedPrecondition("unsupported HTTP method '" +
                                      request.method + "'");
  }
  if (request.target.empty() || request.target[0] != '/') {
    return Status::FailedPrecondition("malformed HTTP target '" +
                                      request.target + "'");
  }
  return request;
}

std::string BuildHttpResponse(int status, std::string_view reason,
                              std::string_view content_type,
                              std::string_view body, bool head_only) {
  std::string response = StrFormat("HTTP/1.1 %d ", status);
  response += reason;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += StrFormat(
      "\r\nContent-Length: %llu\r\nConnection: close\r\n\r\n",
      static_cast<unsigned long long>(body.size()));
  if (!head_only) response += body;
  return response;
}

Status SendAll(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace mic::serve
