// Structured access log for the serve daemon: one JSON-lines record
// per wire request (framed or HTTP) and per rejected-overload
// connection, keyed by the request id that also tags the request's
// trace spans — the join point between the log, the trace ring, and
// the windowed metrics.
//
// Records are serialized under a mutex; the daemon writes one short
// line per request, so contention is negligible next to the socket
// round trip. The stream is flushed per record: an operator tailing
// the file sees a request as soon as it finished.

#ifndef MICTREND_SERVE_ACCESS_LOG_H_
#define MICTREND_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"

namespace mic::serve {

/// One finished request (or rejected connection).
struct AccessRecord {
  /// Server-assigned request id ("1a2b3c-42"); the same id prefixes
  /// the request's trace-span paths ("req/1a2b3c-42/serve/health").
  std::string id;
  /// "frame" or "http".
  std::string transport = "frame";
  /// The framed op name, the HTTP target, or "connect" for a
  /// connection rejected before any request was read.
  std::string endpoint;
  bool ok = false;
  /// Error-envelope code ("bad_request", "overloaded", ...) or empty.
  std::string error;
  double latency_seconds = 0.0;
  /// Snapshot version the response was served from, -1 when the
  /// request never reached a snapshot (transport errors, HTTP).
  std::int64_t version = -1;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class AccessLog {
 public:
  /// Opens (appends to) the JSON-lines file at `path`.
  static Result<std::unique_ptr<AccessLog>> Open(const std::string& path);

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Appends one record as a single JSON line and flushes. The "ts"
  /// field is stamped here (Unix seconds, wall clock).
  void Write(const AccessRecord& record);

 private:
  explicit AccessLog(std::ofstream out);

  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace mic::serve

#endif  // MICTREND_SERVE_ACCESS_LOG_H_
