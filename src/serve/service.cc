#include "serve/service.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <fstream>
#include <utility>
#include <vector>

#include "apps/geo_spread.h"
#include "apps/hospital_gap.h"
#include "cache/fingerprint.h"
#include "mic/io.h"
#include "obs/trace.h"
#include "serve/drill_json.h"

namespace mic::serve {
namespace {

std::string_view ErrorCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return "bad_request";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAlreadyExists:
      return "conflict";
    case StatusCode::kIoError:
      return "io_error";
    default:
      return "internal";
  }
}

std::string_view KindName(trend::SeriesKind kind) {
  switch (kind) {
    case trend::SeriesKind::kDisease:
      return "disease";
    case trend::SeriesKind::kMedicine:
      return "medicine";
    case trend::SeriesKind::kPrescription:
      return "prescription";
  }
  return "prescription";
}

Result<trend::SeriesKind> ParseKind(const std::string& kind) {
  if (kind == "disease") return trend::SeriesKind::kDisease;
  if (kind == "medicine") return trend::SeriesKind::kMedicine;
  if (kind == "prescription") return trend::SeriesKind::kPrescription;
  return Status::InvalidArgument(
      "unknown series kind '" + kind +
      "' (expected disease, medicine, or prescription)");
}

/// The standard success envelope: the version/months pair next to the
/// payload is what clients assert snapshot consistency against.
JsonValue Envelope(const WorldSnapshot& snapshot, JsonValue data) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true))
      .Set("version",
           JsonValue::Int(static_cast<std::int64_t>(snapshot.version)))
      .Set("months",
           JsonValue::Int(static_cast<std::int64_t>(snapshot.months)))
      .Set("data", std::move(data));
  return response;
}

/// One SeriesAnalysis as a JSON object, mirroring the report CSV's
/// columns (absent names print "-", cause is filled only for
/// prescription rows with a detected change).
JsonValue AnalysisToJson(const WorldSnapshot& snapshot,
                         const trend::SeriesAnalysis& analysis) {
  const Catalog& catalog = snapshot.corpus.catalog();
  JsonValue row = JsonValue::Object();
  row.Set("kind", JsonValue::String(std::string(KindName(analysis.kind))));
  row.Set("disease",
          JsonValue::String(
              analysis.kind != trend::SeriesKind::kMedicine
                  ? catalog.diseases().Name(analysis.disease)
                  : std::string("-")));
  row.Set("medicine",
          JsonValue::String(
              analysis.kind != trend::SeriesKind::kDisease
                  ? catalog.medicines().Name(analysis.medicine)
                  : std::string("-")));
  row.Set("change", JsonValue::Bool(analysis.has_change));
  row.Set("month", JsonValue::Int(analysis.change_point));
  row.Set("lambda", JsonValue::Number(analysis.lambda));
  row.Set("criterion", JsonValue::Number(analysis.aic));
  row.Set("criterion_no_change",
          JsonValue::Number(analysis.aic_without_intervention));
  std::string cause = "-";
  if (analysis.kind == trend::SeriesKind::kPrescription &&
      analysis.has_change) {
    cause = std::string(trend::ChangeCauseName(
        snapshot.analyzer.ClassifyPrescriptionChange(snapshot.report,
                                                     analysis)));
  }
  row.Set("cause", JsonValue::String(std::move(cause)));
  return row;
}

}  // namespace

JsonValue ErrorEnvelope(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code",
            JsonValue::String(std::string(ErrorCodeName(status.code()))));
  error.Set("message", JsonValue::String(status.message()));
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false))
      .Set("error", std::move(error));
  return response;
}

TrendService::TrendService(const trend::PipelineConfig& config,
                           const ExecContext& context,
                           store::ClaimStore store)
    : config_(config), context_(context), store_(std::move(store)),
      windows_(std::make_unique<obs::WindowRegistry>()) {
  context_.store = &store_;
  // One metric row per registry op plus the unknown-op catch-all,
  // pre-resolved once so the query path never takes the metrics
  // registry's name-resolution mutex.
  const std::span<const EndpointSpec> endpoints = EndpointTable();
  for (std::size_t i = 0; i < kNumOpSlots; ++i) {
    const std::string name = i == endpoints.size()
                                 ? std::string("unknown")
                                 : std::string(endpoints[i].name);
    op_metrics_[i].requests =
        obs::GetCounter(context_.metrics, "serve.requests." + name);
    op_metrics_[i].errors =
        obs::GetCounter(context_.metrics, "serve.errors." + name);
    op_metrics_[i].latency =
        obs::GetTimer(context_.metrics, "serve.latency." + name);
    op_metrics_[i].window = windows_->channel("serve." + name);
  }
  drain_channel_ = windows_->channel("serve.swap.drain");
}

Result<std::unique_ptr<TrendService>> TrendService::Create(
    const trend::PipelineConfig& config, const ExecContext& context) {
  MIC_RETURN_IF_ERROR(config.Validate());
  if (!config.store.enabled()) {
    return Status::InvalidArgument(
        "serve requires a claim store (--store-dir): the daemon's world "
        "lives in the store, not in a CSV");
  }
  MIC_ASSIGN_OR_RETURN(
      store::ClaimStore store,
      store::ClaimStore::Open(config.store.directory,
                              {.backend = config.store.backend},
                              context.metrics));
  if (store.num_months() == 0) {
    return Status::FailedPrecondition(
        "store at '" + store.directory() +
        "' is empty; run `mictrend import` first");
  }
  auto service = std::unique_ptr<TrendService>(
      new TrendService(config, context, std::move(store)));
  MIC_ASSIGN_OR_RETURN(
      const WorldSnapshot* first,
      BuildSnapshot(1, service->store_, service->config_,
                    service->context_));
  service->hub_.Publish(first);
  obs::Increment(
      obs::GetCounter(service->context_.metrics,
                      "serve.snapshots_published"));
  return service;
}

JsonValue TrendService::Handle(const JsonValue& request,
                               const SnapshotReader& reader) {
  const std::string op = request.GetString("op");
  const OpMetricHandles& op_metrics = op_metrics_[EndpointIndex(op)];
  obs::Increment(op_metrics.requests);
  const auto start = std::chrono::steady_clock::now();
  JsonValue response;
  {
    // The trace event nests under the transport's current span path
    // ("req/<id>/serve/<op>" when the server opened a request span).
    obs::ScopedTimer timer(op_metrics.latency, context_.trace,
                           "serve/" + op);
    const std::int64_t protocol =
        request.GetInt("protocol", kProtocolVersion);
    if (protocol != kProtocolVersion) {
      response = ErrorEnvelope(Status::InvalidArgument(
          "unsupported protocol version " + std::to_string(protocol) +
          " (this server speaks " + std::to_string(kProtocolVersion) +
          ")"));
    } else {
      Result<JsonValue> result = Dispatch(op, request, reader);
      response = result.ok() ? std::move(result).value()
                             : ErrorEnvelope(result.status());
    }
  }
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  const bool ok = response.GetBool("ok", false);
  if (!ok) obs::Increment(op_metrics.errors);
  obs::Record(op_metrics.window, seconds, !ok);
  return response;
}

Result<JsonValue> TrendService::Dispatch(const std::string& op,
                                         const JsonValue& request,
                                         const SnapshotReader& reader) {
  // Positional handler binding for the registry's endpoint table: one
  // row per EndpointTable() entry, in table order. Mutating ops carry
  // nullptr — they are routed below, before a snapshot pin exists.
  using QueryHandler = Result<JsonValue> (TrendService::*)(
      const JsonValue&, const WorldSnapshot&);
  static constexpr std::array<QueryHandler, kNumEndpoints> kHandlers = {
      &TrendService::HandleHealth,      &TrendService::HandleMetrics,
      &TrendService::HandleStats,       &TrendService::HandleSeries,
      &TrendService::HandleTopChanges,  &TrendService::HandleGeoSpread,
      &TrendService::HandleHospitalGap, &TrendService::HandleDrilldown,
      &TrendService::HandleExplain,     &TrendService::HandleReportCsv,
      /*ingest=*/nullptr,               &TrendService::HandleShutdown,
  };
  const std::size_t index = EndpointIndex(op);
  if (index >= kNumEndpoints) {
    return Status::InvalidArgument("unknown op '" + op + "'");
  }
  const EndpointSpec& spec = EndpointTable()[index];
  MIC_RETURN_IF_ERROR(ValidateRequest(spec, request));
  if (spec.mutates) {
    // No pin: the ingest path publishes, and Publish waits for pins of
    // the superseded snapshot — holding one here would self-deadlock.
    return HandleIngest(request);
  }
  SnapshotPin pin = hub_.Acquire(reader);
  return (this->*kHandlers[index])(request, *pin);
}

Result<JsonValue> TrendService::HandleHealth(
    const JsonValue& /*request*/, const WorldSnapshot& snapshot) {
  JsonValue data = JsonValue::Object();
  data.Set("status", JsonValue::String("ok"));
  data.Set("protocol", JsonValue::Int(kProtocolVersion));
  data.Set("store_fingerprint",
           JsonValue::String(cache::KeyToHex(snapshot.store_fingerprint)));
  data.Set("diseases",
           JsonValue::Int(
               static_cast<std::int64_t>(snapshot.series.num_diseases())));
  data.Set("medicines",
           JsonValue::Int(static_cast<std::int64_t>(
               snapshot.series.num_medicines())));
  data.Set("prescriptions",
           JsonValue::Int(
               static_cast<std::int64_t>(snapshot.series.num_pairs())));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleMetrics(
    const JsonValue& /*request*/, const WorldSnapshot& snapshot) {
  JsonValue counters = JsonValue::Object();
  if (context_.metrics != nullptr) {
    // CountersToJson is already the deterministic sorted-name JSON
    // object; parse it into the document rather than re-walking the
    // registry.
    MIC_ASSIGN_OR_RETURN(counters,
                         JsonValue::Parse(context_.metrics->CountersToJson()));
  }
  JsonValue data = JsonValue::Object();
  data.Set("counters", std::move(counters));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleStats(
    const JsonValue& /*request*/, const WorldSnapshot& snapshot) {
  // ToJson is the single source for both this op and the HTTP /varz
  // body; parsing it into the envelope keeps the two byte-equivalent in
  // structure.
  MIC_ASSIGN_OR_RETURN(JsonValue data,
                       JsonValue::Parse(windows_->ToJson()));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleSeries(
    const JsonValue& request, const WorldSnapshot& snapshot) {
  MIC_ASSIGN_OR_RETURN(
      const trend::SeriesKind kind,
      ParseKind(request.GetString("kind", "prescription")));
  const Catalog& catalog = snapshot.corpus.catalog();
  DiseaseId disease;
  MedicineId medicine;
  if (kind != trend::SeriesKind::kMedicine) {
    const std::string name = request.GetString("disease");
    if (name.empty()) {
      return Status::InvalidArgument("missing 'disease' name");
    }
    MIC_ASSIGN_OR_RETURN(disease, catalog.diseases().Lookup(name));
  }
  if (kind != trend::SeriesKind::kDisease) {
    const std::string name = request.GetString("medicine");
    if (name.empty()) {
      return Status::InvalidArgument("missing 'medicine' name");
    }
    MIC_ASSIGN_OR_RETURN(medicine, catalog.medicines().Lookup(name));
  }
  const trend::SeriesAnalysis* analysis = nullptr;
  switch (kind) {
    case trend::SeriesKind::kDisease: {
      auto it = snapshot.report.disease_index.find(disease);
      if (it != snapshot.report.disease_index.end()) {
        analysis = &snapshot.report.diseases[it->second];
      }
      break;
    }
    case trend::SeriesKind::kMedicine: {
      auto it = snapshot.report.medicine_index.find(medicine);
      if (it != snapshot.report.medicine_index.end()) {
        analysis = &snapshot.report.medicines[it->second];
      }
      break;
    }
    case trend::SeriesKind::kPrescription: {
      for (const trend::SeriesAnalysis& row :
           snapshot.report.prescriptions) {
        if (row.disease == disease && row.medicine == medicine) {
          analysis = &row;
          break;
        }
      }
      break;
    }
  }
  if (analysis == nullptr) {
    return Status::NotFound(
        "no analyzed series for the requested keys (rare series are "
        "pruned before analysis; see --min-total)");
  }
  return Envelope(snapshot, AnalysisToJson(snapshot, *analysis));
}

Result<JsonValue> TrendService::HandleTopChanges(
    const JsonValue& request, const WorldSnapshot& snapshot) {
  const std::string kind_name = request.GetString("kind", "all");
  const std::int64_t k = request.GetInt("k", 10);
  if (k <= 0) {
    return Status::InvalidArgument("'k' must be positive");
  }
  bool include[3] = {true, true, true};
  if (kind_name != "all") {
    MIC_ASSIGN_OR_RETURN(const trend::SeriesKind kind,
                         ParseKind(kind_name));
    include[0] = kind == trend::SeriesKind::kDisease;
    include[1] = kind == trend::SeriesKind::kMedicine;
    include[2] = kind == trend::SeriesKind::kPrescription;
  }
  std::vector<const trend::SeriesAnalysis*> changed;
  const auto collect = [&changed](
                           const std::vector<trend::SeriesAnalysis>& rows) {
    for (const trend::SeriesAnalysis& row : rows) {
      if (row.has_change) changed.push_back(&row);
    }
  };
  if (include[0]) collect(snapshot.report.diseases);
  if (include[1]) collect(snapshot.report.medicines);
  if (include[2]) collect(snapshot.report.prescriptions);
  // Rank by AIC improvement of modeling the intervention; stable sort
  // keeps the deterministic report order among ties.
  std::stable_sort(changed.begin(), changed.end(),
                   [](const trend::SeriesAnalysis* a,
                      const trend::SeriesAnalysis* b) {
                     return (a->aic_without_intervention - a->aic) >
                            (b->aic_without_intervention - b->aic);
                   });
  if (changed.size() > static_cast<std::size_t>(k)) {
    changed.resize(static_cast<std::size_t>(k));
  }
  JsonValue rows = JsonValue::Array();
  for (const trend::SeriesAnalysis* row : changed) {
    JsonValue entry = AnalysisToJson(snapshot, *row);
    entry.Set("criterion_drop",
              JsonValue::Number(row->aic_without_intervention - row->aic));
    rows.Append(std::move(entry));
  }
  JsonValue data = JsonValue::Object();
  data.Set("changes", std::move(rows));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleGeoSpread(
    const JsonValue& request, const WorldSnapshot& snapshot) {
  const Catalog& catalog = snapshot.corpus.catalog();
  const JsonValue* medicine_names = request.Find("medicines");
  if (medicine_names == nullptr || !medicine_names->is_array() ||
      medicine_names->items().empty()) {
    return Status::InvalidArgument(
        "'medicines' must be a non-empty array of medicine names");
  }
  std::vector<MedicineId> medicines;
  for (const JsonValue& name : medicine_names->items()) {
    if (!name.is_string()) {
      return Status::InvalidArgument("'medicines' entries must be strings");
    }
    MIC_ASSIGN_OR_RETURN(const MedicineId id,
                         catalog.medicines().Lookup(name.string_value()));
    medicines.push_back(id);
  }
  apps::GeoSpreadOptions options;
  options.reproducer = config_.reproducer;
  const JsonValue* months = request.Find("snapshot_months");
  if (months == nullptr || !months->is_array() ||
      months->items().empty()) {
    return Status::InvalidArgument(
        "'snapshot_months' must be a non-empty array of month indexes");
  }
  for (const JsonValue& month : months->items()) {
    if (!month.is_number()) {
      return Status::InvalidArgument(
          "'snapshot_months' entries must be integers");
    }
    const std::int64_t t = month.int_value();
    if (t < 0 || t >= static_cast<std::int64_t>(snapshot.months)) {
      return Status::OutOfRange(
          "snapshot month " + std::to_string(t) +
          " outside [0, " + std::to_string(snapshot.months) + ")");
    }
    options.snapshot_months.push_back(static_cast<int>(t));
  }
  MIC_ASSIGN_OR_RETURN(
      const apps::GeoSpreadReport report,
      apps::AnalyzeGeoSpread(snapshot.corpus, medicines, options));
  JsonValue month_list = JsonValue::Array();
  for (const int t : report.snapshot_months) {
    month_list.Append(JsonValue::Int(t));
  }
  JsonValue cells = JsonValue::Array();
  for (const apps::GeoCell& cell : report.cells) {
    JsonValue counts = JsonValue::Array();
    for (const double count : cell.counts) {
      counts.Append(JsonValue::Number(count));
    }
    JsonValue row = JsonValue::Object();
    row.Set("city", JsonValue::String(catalog.cities().Name(cell.city)));
    row.Set("medicine",
            JsonValue::String(catalog.medicines().Name(cell.medicine)));
    row.Set("counts", std::move(counts));
    cells.Append(std::move(row));
  }
  JsonValue data = JsonValue::Object();
  data.Set("snapshot_months", std::move(month_list));
  data.Set("cells", std::move(cells));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleHospitalGap(
    const JsonValue& request, const WorldSnapshot& snapshot) {
  const Catalog& catalog = snapshot.corpus.catalog();
  const std::string medicine_name = request.GetString("medicine");
  if (medicine_name.empty()) {
    return Status::InvalidArgument("missing 'medicine' name");
  }
  MIC_ASSIGN_OR_RETURN(const MedicineId medicine,
                       catalog.medicines().Lookup(medicine_name));
  const std::int64_t top_k = request.GetInt("top_k", 10);
  if (top_k <= 0) {
    return Status::InvalidArgument("'top_k' must be positive");
  }
  apps::HospitalGapOptions options;
  options.reproducer = config_.reproducer;
  options.top_k = static_cast<std::size_t>(top_k);
  MIC_ASSIGN_OR_RETURN(
      const apps::HospitalGapReport report,
      apps::AnalyzeHospitalGap(snapshot.corpus, medicine, options));
  JsonValue classes = JsonValue::Array();
  for (const apps::HospitalClassRanking& ranking : report.classes) {
    JsonValue top = JsonValue::Array();
    for (const apps::DiseaseShare& share : ranking.top_diseases) {
      JsonValue row = JsonValue::Object();
      row.Set("disease",
              JsonValue::String(catalog.diseases().Name(share.disease)));
      row.Set("ratio", JsonValue::Number(share.ratio));
      top.Append(std::move(row));
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("hospital_class",
              JsonValue::String(std::string(
                  HospitalClassName(ranking.hospital_class))));
    entry.Set("total_prescriptions",
              JsonValue::Number(ranking.total_prescriptions));
    entry.Set("top_diseases", std::move(top));
    classes.Append(std::move(entry));
  }
  JsonValue data = JsonValue::Object();
  data.Set("medicine", JsonValue::String(medicine_name));
  data.Set("classes", std::move(classes));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleDrilldown(
    const JsonValue& request, const WorldSnapshot& snapshot) {
  MIC_ASSIGN_OR_RETURN(const trend::DrillAxis axis,
                       trend::ParseDrillAxis(request.GetString("axis")));
  return Envelope(snapshot,
                  DrillDownToJson(
                      snapshot.drilldowns[static_cast<std::size_t>(axis)]));
}

Result<JsonValue> TrendService::HandleExplain(
    const JsonValue& request, const WorldSnapshot& snapshot) {
  MIC_ASSIGN_OR_RETURN(const trend::DrillAxis axis,
                       trend::ParseDrillAxis(request.GetString("axis")));
  const double min_share = request.GetDouble("min_share", 0.6);
  if (!(min_share > 0.0) || min_share > 1.0) {
    return Status::InvalidArgument("'min_share' must be in (0, 1]");
  }
  const trend::DrillDownReport& drill =
      snapshot.drilldowns[static_cast<std::size_t>(axis)];
  MIC_ASSIGN_OR_RETURN(
      const trend::ExplainResult result,
      trend::ExplainShift(drill, request.GetString("node"), min_share));
  return Envelope(snapshot, ExplainToJson(drill, result));
}

Result<JsonValue> TrendService::HandleReportCsv(
    const JsonValue& /*request*/, const WorldSnapshot& snapshot) {
  JsonValue data = JsonValue::Object();
  data.Set("csv", JsonValue::String(snapshot.report_csv));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleShutdown(
    const JsonValue& /*request*/, const WorldSnapshot& snapshot) {
  shutdown_.store(true, std::memory_order_seq_cst);
  JsonValue data = JsonValue::Object();
  data.Set("stopping", JsonValue::Bool(true));
  return Envelope(snapshot, std::move(data));
}

Result<JsonValue> TrendService::HandleIngest(const JsonValue& request) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  obs::Span span(ExecContext{nullptr, context_.metrics, context_.trace},
                 "serve-ingest");
  std::size_t appended = 0;
  const std::string corpus_path = request.GetString("corpus");
  if (!corpus_path.empty()) {
    MIC_ASSIGN_OR_RETURN(MicCorpus corpus,
                         ReadCorpusCsvFile(corpus_path));
    const std::string hospitals_path = request.GetString("hospitals");
    if (!hospitals_path.empty()) {
      std::ifstream in(hospitals_path);
      if (!in) {
        return Status::IoError("cannot open " + hospitals_path);
      }
      MIC_RETURN_IF_ERROR(ReadHospitalsCsv(in, corpus.catalog()));
    }
    MIC_ASSIGN_OR_RETURN(appended, store::ImportCorpus(corpus, store_));
  } else {
    // Refresh: reopen the store directory to pick up months appended
    // externally (e.g. `mictrend import --append` against the same
    // directory).
    const std::size_t before = store_.num_months();
    MIC_ASSIGN_OR_RETURN(
        store::ClaimStore reopened,
        store::ClaimStore::Open(config_.store.directory,
                                {.backend = config_.store.backend},
                                context_.metrics));
    appended = reopened.num_months() - before;
    store_ = std::move(reopened);
    context_.store = &store_;
  }
  MIC_ASSIGN_OR_RETURN(
      const WorldSnapshot* next,
      BuildSnapshot(next_version_, store_, config_, context_));
  // Stamp the swap start (never 0, which means "no swap in flight") so
  // the server's watchdog can flag a publish stuck waiting on a pinned
  // reader; clear it as soon as the drain completes.
  swap_started_ns_.store(std::max<std::uint64_t>(1, windows_->NowNs()),
                         std::memory_order_relaxed);
  const double drain_seconds = hub_.Publish(next);
  swap_started_ns_.store(0, std::memory_order_relaxed);
  obs::Record(drain_channel_, drain_seconds);
  ++next_version_;
  obs::Increment(obs::GetCounter(context_.metrics,
                                 "serve.snapshots_published"));
  obs::Increment(obs::GetCounter(context_.metrics,
                                 "serve.ingest.months_appended"),
                 appended);
  obs::Set(obs::GetGauge(context_.metrics, "serve.swap.drain_seconds"),
           drain_seconds);
  JsonValue data = JsonValue::Object();
  data.Set("appended",
           JsonValue::Int(static_cast<std::int64_t>(appended)));
  data.Set("drain_seconds", JsonValue::Number(drain_seconds));
  return Envelope(*next, std::move(data));
}

}  // namespace mic::serve
