#include "serve/registry.h"

namespace mic::serve {
namespace {

constexpr ParamSpec kSeriesParams[] = {
    {"kind", ParamType::kString, false,
     "disease|medicine|prescription (default prescription)"},
    {"disease", ParamType::kString, false,
     "disease name (required unless kind=medicine)"},
    {"medicine", ParamType::kString, false,
     "medicine name (required unless kind=disease)"},
};

constexpr ParamSpec kTopChangesParams[] = {
    {"kind", ParamType::kString, false,
     "all|disease|medicine|prescription (default all)"},
    {"k", ParamType::kInt, false, "result count (default 10)"},
};

constexpr ParamSpec kGeoSpreadParams[] = {
    {"medicines", ParamType::kStringList, true,
     "medicine names to trace"},
    {"snapshot_months", ParamType::kIntList, true,
     "month indexes to snapshot"},
};

constexpr ParamSpec kHospitalGapParams[] = {
    {"medicine", ParamType::kString, true, "medicine name"},
    {"top_k", ParamType::kInt, false,
     "per-class disease ranking depth (default 10)"},
};

constexpr ParamSpec kDrilldownParams[] = {
    {"axis", ParamType::kString, true, "medicine|disease|hospital"},
};

constexpr ParamSpec kExplainParams[] = {
    {"axis", ParamType::kString, true, "medicine|disease|hospital"},
    {"node", ParamType::kString, true,
     "tree node whose shift to explain (e.g. 'all')"},
    {"min_share", ParamType::kDouble, false,
     "minimum child contribution to keep descending (default 0.6)"},
};

constexpr ParamSpec kIngestParams[] = {
    {"corpus", ParamType::kString, false,
     "server-local corpus CSV (omit: re-open the store directory)"},
    {"hospitals", ParamType::kString, false,
     "server-local hospital attributes CSV"},
};

constexpr EndpointSpec kEndpoints[] = {
    {"health", false, "liveness + served snapshot identity", {},
     ResponseMode::kEnvelope, {}},
    {"metrics", false, "the metrics registry counters", {},
     ResponseMode::kEnvelope, {}},
    {"stats", false, "sliding-window telemetry (the /varz document)",
     {}, ResponseMode::kEnvelope, {}},
    {"series", false, "one analyzed series by name", kSeriesParams,
     ResponseMode::kEnvelope, {}},
    {"top_changes", false, "largest detected changes, ranked",
     kTopChangesParams, ResponseMode::kEnvelope, {}},
    {"geo_spread", false, "per-city medicine counts at month snapshots",
     kGeoSpreadParams, ResponseMode::kEnvelope, {}},
    {"hospital_gap", false, "disease mix by hospital bed-size class",
     kHospitalGapParams, ResponseMode::kEnvelope, {}},
    {"drilldown", false, "hierarchical rollup tree for one axis",
     kDrilldownParams, ResponseMode::kDataOnly, {}},
    {"explain", false, "subgroup search for an aggregate shift",
     kExplainParams, ResponseMode::kDataOnly, {}},
    {"report_csv", false, "the full trend report CSV artifact", {},
     ResponseMode::kRawMember, "csv"},
    {"ingest", true, "append months and publish the next snapshot",
     kIngestParams, ResponseMode::kEnvelope, {}},
    {"shutdown", false, "answer, then wind the daemon down", {},
     ResponseMode::kEnvelope, {}},
};

static_assert(std::size(kEndpoints) == kNumEndpoints,
              "keep kNumEndpoints in sync with the endpoint table");

bool ShapeMatches(ParamType type, const JsonValue& value) {
  switch (type) {
    case ParamType::kString:
      return value.is_string();
    case ParamType::kInt:
    case ParamType::kDouble:
      return value.is_number();
    case ParamType::kBool:
      return value.is_bool();
    case ParamType::kStringList:
    case ParamType::kIntList:
      return value.is_array();
  }
  return false;
}

std::string_view ShapeName(ParamType type) {
  switch (type) {
    case ParamType::kString:
      return "a string";
    case ParamType::kInt:
      return "an integer";
    case ParamType::kDouble:
      return "a number";
    case ParamType::kBool:
      return "a boolean";
    case ParamType::kStringList:
      return "an array of strings";
    case ParamType::kIntList:
      return "an array of integers";
  }
  return "?";
}

}  // namespace

std::string_view ParamTypeName(ParamType type) {
  switch (type) {
    case ParamType::kString:
      return "string";
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "number";
    case ParamType::kBool:
      return "bool";
    case ParamType::kStringList:
      return "list";
    case ParamType::kIntList:
      return "int-list";
  }
  return "?";
}

const ParamSpec* EndpointSpec::FindParam(std::string_view param) const {
  for (const ParamSpec& spec : params) {
    if (spec.name == param) return &spec;
  }
  return nullptr;
}

std::span<const EndpointSpec> EndpointTable() { return kEndpoints; }

const EndpointSpec* FindEndpoint(std::string_view op) {
  for (const EndpointSpec& spec : kEndpoints) {
    if (spec.name == op) return &spec;
  }
  return nullptr;
}

std::size_t EndpointIndex(std::string_view op) {
  for (std::size_t i = 0; i < std::size(kEndpoints); ++i) {
    if (kEndpoints[i].name == op) return i;
  }
  return std::size(kEndpoints);
}

Status ValidateRequest(const EndpointSpec& spec, const JsonValue& request) {
  for (const auto& [name, value] : request.members()) {
    if (name == "op" || name == "protocol") continue;
    const ParamSpec* param = spec.FindParam(name);
    if (param == nullptr) {
      return Status::InvalidArgument(
          "unknown parameter '" + name + "' for op '" +
          std::string(spec.name) + "'");
    }
    if (!ShapeMatches(param->type, value)) {
      return Status::InvalidArgument(
          "parameter '" + name + "' of op '" + std::string(spec.name) +
          "' must be " + std::string(ShapeName(param->type)));
    }
  }
  for (const ParamSpec& param : spec.params) {
    if (param.required && request.Find(param.name) == nullptr) {
      return Status::InvalidArgument(
          "missing required parameter '" + std::string(param.name) +
          "' for op '" + std::string(spec.name) + "'");
    }
  }
  return Status::OK();
}

std::string BuildOpsUsageText() {
  std::string out;
  for (const EndpointSpec& endpoint : kEndpoints) {
    out += "    ";
    out += endpoint.name;
    out += " — ";
    out += endpoint.summary;
    out += "\n";
    for (const ParamSpec& param : endpoint.params) {
      // Flags are printed CLI-style: the wire name's '_' becomes '-'
      // (tools/cli_common.h CliFlagName applies the same mapping when
      // assembling requests).
      std::string flag(param.name);
      for (char& c : flag) {
        if (c == '_') c = '-';
      }
      out += "        --";
      out += flag;
      out += " <";
      out += ParamTypeName(param.type);
      out += ">";
      out += param.required ? "  (required) " : "  ";
      out += param.summary;
      out += "\n";
    }
  }
  return out;
}

}  // namespace mic::serve
