#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/strings.h"

namespace mic::serve {
namespace {

constexpr int kMaxParseDepth = 64;

// ---------------------------------------------------------------- parser

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos) + ": " + message);
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        MIC_ASSIGN_OR_RETURN(std::string text_value, ParseString());
        return JsonValue::String(std::move(text_value));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(std::string_view literal, JsonValue value) {
    if (text.substr(pos, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos += literal.size();
    return value;
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos;
      return object;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected member key");
      MIC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':'");
      ++pos;
      MIC_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == '}') {
        ++pos;
        return object;
      }
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      return array;
    }
    while (true) {
      MIC_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == ']') {
        ++pos;
        return array;
      }
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos;  // '"'
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (AtEnd()) return Error("unterminated escape");
        const char escape = text[pos++];
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by this protocol; encode them as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("invalid escape");
        }
        continue;
      }
      out += c;
    }
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos;
    bool is_double = false;
    while (!AtEnd()) {
      const char c = Peek();
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid inside an exponent, which ParseDouble
        // validates; accept the character class here.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos;
      } else {
        break;
      }
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty()) return Error("expected value");
    if (!is_double) {
      if (auto parsed = ParseInt64(token); parsed.ok()) {
        return JsonValue::Int(*parsed);
      }
      // Out-of-range integer literal: fall through to double.
    }
    auto parsed = ParseDouble(token);
    if (!parsed.ok()) return Error("invalid number");
    return JsonValue::Number(*parsed);
  }
};

void AppendNumber(std::string& out, bool is_int, std::int64_t int_value,
                  double double_value) {
  if (is_int) {
    out += StrFormat("%lld", static_cast<long long>(int_value));
    return;
  }
  if (!std::isfinite(double_value)) {
    // JSON has no Infinity/NaN; null is the conventional degradation.
    out += "null";
    return;
  }
  out += StrFormat("%.17g", double_value);
}

// ------------------------------------------------------------- fd helpers

Status WriteAll(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    if (written == 0) return Status::IoError("write returned 0");
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes, polling so `stop` and the deadline are
/// observed. `saw_any` reports whether at least one byte arrived (to
/// distinguish clean EOF from a torn frame).
Status ReadAll(int fd, void* data, std::size_t size,
               const WireLimits& limits, const std::atomic<bool>* stop,
               bool* saw_any) {
  char* cursor = static_cast<char*>(data);
  std::size_t remaining = size;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(limits.timeout_ms);
  while (remaining > 0) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("stopped");
    }
    if (limits.timeout_ms > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      return Status::OutOfRange("read timed out");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, limits.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll failed: ") +
                             std::strerror(errno));
    }
    if (ready == 0) continue;  // poll tick: recheck stop/deadline
    const ssize_t got = ::read(fd, cursor, remaining);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IoError(std::string("read failed: ") +
                             std::strerror(errno));
    }
    if (got == 0) {
      return Status::IoError(*saw_any ? "eof mid-frame" : "eof");
    }
    *saw_any = true;
    cursor += got;
    remaining -= static_cast<std::size_t>(got);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- JsonValue

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_is_int_ = false;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Int(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_is_int_ = true;
  v.int_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

double JsonValue::number_value() const {
  return number_is_int_ ? static_cast<double>(int_) : number_;
}

std::int64_t JsonValue::int_value() const {
  return number_is_int_ ? int_ : static_cast<std::int64_t>(number_);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_string()) {
    return std::string(fallback);
  }
  return member->string_value();
}

std::int64_t JsonValue::GetInt(std::string_view key,
                               std::int64_t fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_number()) return fallback;
  return member->int_value();
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_number()) return fallback;
  return member->number_value();
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_bool()) return fallback;
  return member->bool_value();
}

void JsonValue::SerializeTo(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      AppendNumber(out, number_is_int_, int_, number_);
      return;
    case Kind::kString:
      out += '"';
      AppendJsonEscaped(out, string_);
      out += '"';
      return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out += ',';
        first = false;
        item.SerializeTo(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        AppendJsonEscaped(out, name);
        out += "\":";
        value.SerializeTo(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(out);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser{text};
  MIC_ASSIGN_OR_RETURN(JsonValue value, parser.ParseValue(0));
  parser.SkipWhitespace();
  if (!parser.AtEnd()) return parser.Error("trailing garbage");
  return value;
}

// ----------------------------------------------------------------- framing

Status WriteFrame(int fd, std::string_view payload,
                  std::size_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte limit");
  }
  unsigned char header[4];
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(length >> 24);
  header[1] = static_cast<unsigned char>(length >> 16);
  header[2] = static_cast<unsigned char>(length >> 8);
  header[3] = static_cast<unsigned char>(length);
  MIC_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  if (!payload.empty()) {
    MIC_RETURN_IF_ERROR(WriteAll(fd, payload.data(), payload.size()));
  }
  return Status::OK();
}

Result<std::string> ReadFrame(int fd, const WireLimits& limits,
                              const std::atomic<bool>* stop) {
  unsigned char header[4];
  bool saw_any = false;
  Status status = ReadAll(fd, header, sizeof(header), limits, stop,
                          &saw_any);
  if (!status.ok()) {
    if (status.code() == StatusCode::kIoError && !saw_any) {
      return Status::NotFound("connection closed");
    }
    return status;
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  if (length > limits.max_frame_bytes) {
    return Status::FailedPrecondition(
        "declared frame length " + std::to_string(length) +
        " exceeds the " + std::to_string(limits.max_frame_bytes) +
        "-byte limit");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    MIC_RETURN_IF_ERROR(
        ReadAll(fd, payload.data(), length, limits, stop, &saw_any));
  }
  return payload;
}

Result<int> ConnectTcp(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("invalid port " + std::to_string(port));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host address '" + host +
                                   "' (IPv4 dotted quad expected)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string message = std::string("cannot connect to ") +
                                resolved + ":" + std::to_string(port) +
                                ": " + std::strerror(errno);
    ::close(fd);
    return Status::IoError(message);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<JsonValue> RoundTrip(int fd, const JsonValue& request,
                            const WireLimits& limits) {
  MIC_RETURN_IF_ERROR(
      WriteFrame(fd, request.Serialize(), limits.max_frame_bytes));
  MIC_ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd, limits));
  return JsonValue::Parse(payload);
}

}  // namespace mic::serve
