// TcpServer: the daemon's transport. Accepts TCP connections on a
// loopback (or given) address, frames requests/responses with the wire
// layer, and dispatches each parsed request to a TrendService.
//
// Threading model, sized for a small daemon rather than a C10K server:
//   - the accept loop runs on the thread that calls Serve(), polling
//     the listen socket so it observes stop conditions within one poll
//     interval;
//   - a fixed pool of worker threads each own one registered
//     SnapshotReader (their hazard slot) and handle one connection at a
//     time, request by request. The per-request path — read frame,
//     parse, Handle() against a pinned snapshot, write frame — takes no
//     locks; the only synchronization a worker touches between
//     requests of one connection is its own hazard slot. The
//     mutex+condvar pair below hands *connections* (not requests) from
//     the accept loop to workers.
//   - request limits: frames above WireLimits::max_frame_bytes are
//     answered with a `frame_too_large` error envelope and the
//     connection is closed; when more than `max_pending` accepted
//     connections are waiting for a worker, new ones are answered with
//     `overloaded` and closed instead of queueing unboundedly.
//
// Observability (this transport layer, on top of the service's per-op
// telemetry):
//   - every wire request gets a server-assigned id ("<hex>-<seq>"); a
//     stack-only span makes the request's trace events nest under
//     "req/<id>/...", and the same id keys the JSON-lines access log
//     (ServerOptions::access_log_path) — the join point between log,
//     trace, and metrics. Requests slower than
//     slow_request_threshold_ms get their span tree force-retained in
//     the trace ring (tail-based sampling, TraceLog::RetainSince).
//   - plain HTTP GET/HEAD on the same port (detected by peeking the
//     first bytes) serves /metrics (OpenMetrics), /healthz, and /varz
//     (the windowed-stats JSON) — see serve/http.h.
//   - a watchdog thread samples queue depth and trace-ring drop/retain
//     gauges each poll interval, feeds the drop delta into the
//     "obs.trace.dropped" window channel, and counts a
//     `serve.swap.stalls` episode when a snapshot publish waits on
//     readers longer than swap_stall_deadline_ms.
//
// Shutdown is bounded by the poll cadence: RequestStop() (or the
// service handling a `shutdown` request, or an external stop flag) is
// observed by the accept loop, the watchdog, and every blocked frame
// read within ~one WireLimits::poll_interval_ms; workers finish the
// request in flight, close their connection, and join.

#ifndef MICTREND_SERVE_SERVER_H_
#define MICTREND_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/access_log.h"
#include "serve/http.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace mic::serve {

struct ServerOptions {
  /// Bind address (IPv4 dotted quad or "localhost").
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  int port = 0;
  /// Worker threads (= max concurrent connections being served).
  /// Clamped to SnapshotHub::kMaxReaders.
  int num_workers = 4;
  /// Accepted connections allowed to wait for a worker before new ones
  /// are rejected with an `overloaded` error.
  int max_pending = 64;
  /// JSON-lines access log path; empty disables the log.
  std::string access_log_path;
  /// Requests slower than this get their trace-span tree force-retained
  /// (tail-based sampling); <= 0 disables retention.
  int slow_request_threshold_ms = 500;
  /// A snapshot publish waiting on readers longer than this counts one
  /// `serve.swap.stalls` episode; <= 0 disables the watchdog check.
  int swap_stall_deadline_ms = 1000;
  WireLimits limits;
};

class TcpServer {
 public:
  /// Binds, listens, and spawns the worker pool. The service must
  /// outlive the server.
  static Result<std::unique_ptr<TcpServer>> Start(
      TrendService* service, const ServerOptions& options);

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;
  /// Stops and joins everything (idempotent with Serve's own cleanup).
  ~TcpServer();

  /// The bound port (resolved when options.port was 0).
  int port() const { return port_; }

  /// Runs the accept loop on the calling thread until a stop condition:
  /// RequestStop(), the service handling a `shutdown` request, or
  /// `external_stop` (may be null) becoming true. Joins the workers
  /// before returning, so when Serve returns the daemon is fully down.
  Status Serve(const std::atomic<bool>* external_stop = nullptr);

  /// Asks the accept loop and every worker to wind down. Safe from any
  /// thread (it is how a signal handler's flag is translated).
  void RequestStop();

 private:
  TcpServer(TrendService* service, const ServerOptions& options,
            int listen_fd, int port);

  void WorkerMain();
  /// Serves one connection until EOF, error, or stop. Transport-level
  /// failures answer with an error envelope where a reply is still
  /// possible.
  void ServeConnection(int fd, const SnapshotReader& reader);
  /// Answers one HTTP GET/HEAD (/metrics, /healthz, /varz) and returns;
  /// HTTP connections are one-shot.
  void ServeHttp(int fd);
  /// The self-watching loop: queue depth, trace-drop rate, swap-stall
  /// detection. Runs until stop, sampling each poll interval.
  void WatchMain();
  /// "<hex prefix>-<seq>": unique within the process, prefix-distinct
  /// across restarts (seeded from the steady clock at Start).
  std::string NextRequestId();
  /// Stops, joins, drains the pending queue, closes the listen socket.
  /// Idempotent.
  void Shutdown();

  TrendService* service_;
  ServerOptions options_;
  int listen_fd_;
  int port_;

  std::unique_ptr<AccessLog> access_log_;  // null when disabled
  std::string id_prefix_;
  std::atomic<std::uint64_t> request_seq_{0};

  /// Pre-resolved telemetry handles (null without a registry).
  obs::Counter* overload_rejections_ = nullptr;
  obs::Counter* rejected_overloaded_ = nullptr;
  obs::Counter* swap_stalls_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* trace_dropped_ = nullptr;
  obs::Gauge* trace_retained_ = nullptr;
  /// Window channel fed the per-interval trace-drop delta.
  obs::WindowedChannel* drop_window_ = nullptr;

  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::condition_variable pending_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  std::vector<std::thread> workers_;
  std::thread watcher_;
  bool joined_ = false;  // guarded by mu_
};

}  // namespace mic::serve

#endif  // MICTREND_SERVE_SERVER_H_
