// The mictrend serve wire layer: length-prefixed JSON frames over a
// byte stream, plus the minimal JSON document model the protocol
// speaks.
//
// Framing (normative; docs/serve_protocol.md is the client-facing
// reference): every message — request or response — is one frame,
//
//   [ 4-byte big-endian unsigned payload length | payload bytes ]
//
// where the payload is a single UTF-8 JSON object. A frame longer than
// the receiver's limit is a protocol error: the server answers with a
// `frame_too_large` error envelope and closes the connection, so a
// misbehaving client cannot make it buffer unbounded input.
//
// JsonValue is deliberately small: objects preserve insertion order
// (serialization is therefore deterministic — the same document always
// produces the same bytes), numbers distinguish integers from doubles
// so 64-bit counters round-trip exactly, and parsing enforces a depth
// limit. It is not a general-purpose JSON library; it is exactly what
// the protocol needs, with zero dependencies.
//
// The fd-based helpers (ReadFrame/WriteFrame/ConnectTcp) are POSIX-only
// like the rest of the serve layer. ReadFrame polls in short intervals
// so a blocked reader observes a stop flag within ~one interval, which
// is what makes graceful shutdown bounded.

#ifndef MICTREND_SERVE_WIRE_H_
#define MICTREND_SERVE_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mic::serve {

/// One JSON document node. Objects keep member insertion order, so
/// Serialize() is deterministic for a deterministically built document.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue Int(std::int64_t value);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  /// Numeric value as a double (integers convert).
  double number_value() const;
  /// Numeric value as an integer (doubles truncate).
  std::int64_t int_value() const;
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key, or null when absent / not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Sets (or replaces) an object member; returns *this for chaining.
  JsonValue& Set(std::string_view key, JsonValue value);
  /// Appends an array element; returns *this for chaining.
  JsonValue& Append(JsonValue value);

  /// Typed member readers with fallbacks (missing member or wrong type
  /// yields the fallback).
  std::string GetString(std::string_view key,
                        std::string_view fallback = "") const;
  std::int64_t GetInt(std::string_view key, std::int64_t fallback) const;
  double GetDouble(std::string_view key, double fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Compact deterministic serialization (no whitespace; object members
  /// in insertion order; integers print without a decimal point,
  /// doubles with %.17g so they round-trip).
  std::string Serialize() const;
  void SerializeTo(std::string& out) const;

  /// Strict parse of exactly one JSON document (trailing garbage is an
  /// error). Depth is limited to 64 nested containers.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool number_is_int_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Receiver-side limits and the poll cadence of the blocking reads.
struct WireLimits {
  /// Largest acceptable frame payload. The default fits any report this
  /// library produces with two orders of magnitude to spare.
  std::size_t max_frame_bytes = 8u << 20;  // 8 MiB
  /// How often a blocked ReadFrame rechecks the stop flag.
  int poll_interval_ms = 100;
  /// Overall deadline for one ReadFrame (0 = wait forever). Clients set
  /// this; the server waits forever and relies on the stop flag.
  int timeout_ms = 0;
};

/// Writes one frame (length prefix + payload). Fails with
/// InvalidArgument when the payload exceeds `max_frame_bytes`, IoError
/// on a short or failed write.
Status WriteFrame(int fd, std::string_view payload,
                  std::size_t max_frame_bytes = WireLimits{}.max_frame_bytes);

/// Reads one frame payload. Outcomes:
///   - OK: one complete payload;
///   - NotFound: the peer closed the stream cleanly before any byte of
///     a new frame (normal end of a connection);
///   - FailedPrecondition: the declared length exceeds
///     limits.max_frame_bytes (protocol violation — close the
///     connection after answering);
///   - OutOfRange: limits.timeout_ms elapsed;
///   - IoError: torn frame (EOF mid-frame) or a read error.
/// `stop` (may be null) is checked every poll interval; a set flag
/// aborts the read with FailedPrecondition("stopped").
Result<std::string> ReadFrame(int fd, const WireLimits& limits = {},
                              const std::atomic<bool>* stop = nullptr);

/// Connects to host:port (IPv4 dotted quad or "localhost"). Returns the
/// connected socket fd; the caller owns it (close(2) when done).
Result<int> ConnectTcp(const std::string& host, int port);

/// Client convenience: serialize `request`, write it as one frame, read
/// one response frame, parse it. The fd stays open for further calls.
Result<JsonValue> RoundTrip(int fd, const JsonValue& request,
                            const WireLimits& limits = {});

}  // namespace mic::serve

#endif  // MICTREND_SERVE_WIRE_H_
