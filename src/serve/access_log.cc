#include "serve/access_log.h"

#include <chrono>
#include <utility>

#include "common/strings.h"

namespace mic::serve {

AccessLog::AccessLog(std::ofstream out) : out_(std::move(out)) {}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(
    const std::string& path) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return Status::IoError("cannot open access log " + path);
  }
  return std::unique_ptr<AccessLog>(new AccessLog(std::move(out)));
}

void AccessLog::Write(const AccessRecord& record) {
  const double ts =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string line = StrFormat("{\"ts\":%.6f,\"id\":\"", ts);
  AppendJsonEscaped(line, record.id);
  line += "\",\"transport\":\"";
  AppendJsonEscaped(line, record.transport);
  line += "\",\"endpoint\":\"";
  AppendJsonEscaped(line, record.endpoint);
  line += record.ok ? "\",\"ok\":true,\"error\":\""
                    : "\",\"ok\":false,\"error\":\"";
  AppendJsonEscaped(line, record.error);
  line += StrFormat(
      "\",\"latency_seconds\":%.9f,\"version\":%lld,\"bytes_in\":%llu,"
      "\"bytes_out\":%llu}",
      record.latency_seconds, static_cast<long long>(record.version),
      static_cast<unsigned long long>(record.bytes_in),
      static_cast<unsigned long long>(record.bytes_out));
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
}

}  // namespace mic::serve
