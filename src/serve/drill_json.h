// JSON rendering of drill-down artifacts, shared verbatim between the
// serve endpoints (`drilldown` / `explain` data payloads) and the
// offline CLI (`mictrend drilldown --json` / `--explain-json`). One
// renderer + JsonValue's deterministic serialization is what lets the
// drill-smoke gate byte-compare served output against the offline run.

#ifndef MICTREND_SERVE_DRILL_JSON_H_
#define MICTREND_SERVE_DRILL_JSON_H_

#include "serve/wire.h"
#include "trend/drilldown.h"

namespace mic::serve {

/// The whole tree: {"axis","months","nodes":[{name,parent,depth,leaf,
/// total,change,month,lambda,criterion,criterion_no_change}, ...]}.
/// Node order is the report's storage order (root first, children
/// after their parent) — deterministic at any thread count.
JsonValue DrillDownToJson(const trend::DrillDownReport& report);

/// One subgroup-search descent: {"axis","target","change_month",
/// "delta","min_share","path":[{node,delta,share},...],"driver",
/// "driver_share"}.
JsonValue ExplainToJson(const trend::DrillDownReport& report,
                        const trend::ExplainResult& result);

}  // namespace mic::serve

#endif  // MICTREND_SERVE_DRILL_JSON_H_
