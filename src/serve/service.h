// TrendService: the daemon's request handler, independent of any
// transport. The TCP server (serve/server.h) parses frames into
// JsonValue requests and hands them here; tests call Handle() directly.
//
// The op universe lives in ONE place — the declarative endpoint
// registry (serve/registry.h) — which also carries each op's typed
// parameter schema; Dispatch validates every request against it before
// any handler runs (unknown parameters are rejected). Query ops run
// entirely against a pinned WorldSnapshot — no locks, no mutable
// service state. Mutating ops (ingest) serialize on a mutex, build the
// next snapshot off the query path, and publish it through the
// SnapshotHub; queries keep answering from the old snapshot until the
// swap lands.
//
// Every response carries the snapshot's version and month count next to
// the payload, which is what lets a client (and the hammer test) assert
// that one response is internally consistent — all fields from one
// snapshot, never torn across a swap.
//
// Observability: each op increments serve.requests.<op>, failures add
// serve.errors.<op>, latency lands in the serve.latency.<op> timer and
// the "serve.<op>" sliding-window channel (rolling p50/p95/p99, rps,
// error rate — see obs/window.h), and each request emits a
// "serve/<op>" trace event nested under whatever span path the
// transport opened (the server's per-request "req/<id>" path). Ingest
// additionally maintains serve.ingest.months_appended,
// serve.snapshots_published, the serve.swap.drain_seconds gauge, the
// "serve.swap.drain" window channel, and the swap_started_ns() stamp
// the server's stall watchdog samples.

#ifndef MICTREND_SERVE_SERVICE_H_
#define MICTREND_SERVE_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/exec_context.h"
#include "common/result.h"
#include "obs/window.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "store/claim_store.h"
#include "trend/pipeline.h"

namespace mic::obs {
class Counter;
class Timer;
class TraceLog;
}  // namespace mic::obs

namespace mic::serve {

/// Protocol version served in `health` responses and checked against a
/// request's optional "protocol" field (docs/serve_protocol.md states
/// the compatibility rules). Version 2: every framed op routes through
/// the declarative endpoint registry (serve/registry.h) and unknown
/// request members are rejected with bad_request instead of ignored.
inline constexpr std::int64_t kProtocolVersion = 2;

/// Builds the uniform error envelope:
/// {"ok":false,"error":{"code":"...","message":"..."}}.
/// Codes: bad_request, not_found, conflict, io_error, internal,
/// frame_too_large (used by the server), overloaded (ditto).
JsonValue ErrorEnvelope(const Status& status);

class TrendService {
 public:
  /// Opens the claim store named by config.store (which must be
  /// enabled and non-empty), runs the pipeline once, and publishes
  /// snapshot version 1. `context` is captured for the lifetime of the
  /// service: context.cache warm-starts rebuilds, context.metrics
  /// receives the serve.* metrics (null disables them).
  static Result<std::unique_ptr<TrendService>> Create(
      const trend::PipelineConfig& config, const ExecContext& context);

  /// Handles one request. Total: every failure becomes an error
  /// envelope, so the transport always has a document to write back.
  /// `reader` is the calling thread's registered hazard slot.
  JsonValue Handle(const JsonValue& request, const SnapshotReader& reader);

  SnapshotHub& hub() { return hub_; }
  obs::MetricsRegistry* metrics() const { return context_.metrics; }
  obs::TraceLog* trace() const { return context_.trace; }

  /// The service's sliding-window telemetry (never null): one channel
  /// per op ("serve.health", ...) plus "serve.swap.drain". Its ToJson()
  /// is both the HTTP /varz body and the framed `stats` payload.
  obs::WindowRegistry* windows() const { return windows_.get(); }

  /// Timestamp (windows()->NowNs() clock) when an in-flight snapshot
  /// publish started waiting for readers to drain, 0 when no swap is in
  /// flight. The server's watchdog samples it to detect swap stalls.
  std::uint64_t swap_started_ns() const {
    return swap_started_ns_.load(std::memory_order_relaxed);
  }

  /// Set once a shutdown request was handled; the server polls it.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_seq_cst);
  }

 private:
  TrendService(const trend::PipelineConfig& config,
               const ExecContext& context, store::ClaimStore store);

  /// Dispatches on request["op"] via the endpoint registry
  /// (serve/registry.h): unknown ops and schema violations (unknown
  /// parameters included) fail before any handler runs; status errors
  /// bubble up to Handle which wraps them in the envelope.
  Result<JsonValue> Dispatch(const std::string& op,
                             const JsonValue& request,
                             const SnapshotReader& reader);

  /// Query handlers, one per registry row, all on the uniform
  /// (request, snapshot) shape so the dispatch table stays positional.
  /// Handlers that need no parameters simply ignore `request`.
  Result<JsonValue> HandleHealth(const JsonValue& request,
                                 const WorldSnapshot& snapshot);
  Result<JsonValue> HandleMetrics(const JsonValue& request,
                                  const WorldSnapshot& snapshot);
  /// The windowed-telemetry snapshot (windows()->ToJson() parsed into
  /// the envelope), for `mictrend query --op stats`.
  Result<JsonValue> HandleStats(const JsonValue& request,
                                const WorldSnapshot& snapshot);
  Result<JsonValue> HandleSeries(const JsonValue& request,
                                 const WorldSnapshot& snapshot);
  Result<JsonValue> HandleTopChanges(const JsonValue& request,
                                     const WorldSnapshot& snapshot);
  Result<JsonValue> HandleGeoSpread(const JsonValue& request,
                                    const WorldSnapshot& snapshot);
  Result<JsonValue> HandleHospitalGap(const JsonValue& request,
                                      const WorldSnapshot& snapshot);
  /// The precomputed rollup tree for request["axis"].
  Result<JsonValue> HandleDrilldown(const JsonValue& request,
                                    const WorldSnapshot& snapshot);
  /// Subgroup search over the precomputed tree (trend::ExplainShift).
  Result<JsonValue> HandleExplain(const JsonValue& request,
                                  const WorldSnapshot& snapshot);
  Result<JsonValue> HandleReportCsv(const JsonValue& request,
                                    const WorldSnapshot& snapshot);
  Result<JsonValue> HandleShutdown(const JsonValue& request,
                                   const WorldSnapshot& snapshot);
  /// Serialized on ingest_mu_. Appends the months of request["corpus"]
  /// (a server-local CSV path; omitted = reload the store from disk to
  /// pick up external appends), rebuilds warm via context_.cache, and
  /// publishes the next snapshot version.
  Result<JsonValue> HandleIngest(const JsonValue& request);

  /// Pre-resolved per-op metric handles (one row per known op plus a
  /// trailing catch-all for unknown ops), so the query path never takes
  /// the registry's name-resolution mutex. All null when the context
  /// carries no registry.
  struct OpMetricHandles {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Timer* latency = nullptr;
    /// Sliding-window channel "serve.<op>" (always non-null: the
    /// window registry exists even without a metrics registry).
    obs::WindowedChannel* window = nullptr;
  };
  static constexpr std::size_t kNumOpSlots = kNumEndpoints + 1;

  trend::PipelineConfig config_;
  ExecContext context_;
  store::ClaimStore store_;
  SnapshotHub hub_;
  std::array<OpMetricHandles, kNumOpSlots> op_metrics_;
  std::unique_ptr<obs::WindowRegistry> windows_;
  obs::WindowedChannel* drain_channel_ = nullptr;
  std::atomic<std::uint64_t> swap_started_ns_{0};

  std::mutex ingest_mu_;
  std::uint64_t next_version_ = 2;  // guarded by ingest_mu_ after Create
  std::atomic<bool> shutdown_{false};
};

}  // namespace mic::serve

#endif  // MICTREND_SERVE_SERVICE_H_
