// The serve layer's RCU-style snapshot machinery.
//
// A WorldSnapshot is everything the daemon needs to answer queries about
// one version of the world: the loaded corpus, the reproduced series,
// the analyzed trend report, and the precomputed report CSV — all
// immutable once built. Queries read a snapshot; they never mutate one.
//
// SnapshotHub is the publication point. It holds the current snapshot
// behind a single atomic pointer and retires superseded snapshots with
// hazard pointers, so the reader path is wait-free and lock-free:
//
//   reader:    p = current; hazard[slot] = p; recheck current == p;
//              ... use *p ...; hazard[slot] = null
//   publisher: old = current.exchange(next);
//              spin until no hazard slot holds old; delete old
//
// Why not std::atomic<std::shared_ptr>? libstdc++ implements it with a
// spinlock pool, which would put a lock on the query path — the serve
// contract is zero reader locks. The hazard-pointer scheme above uses
// only seq_cst atomic loads and stores on the reader side.
//
// Soundness sketch (all operations seq_cst, so there is one total order
// S over them):
//   - A reader's pin is valid because the recheck succeeded: its hazard
//     store precedes the successful recheck load in S, and the recheck
//     read `p` from current, so any publisher that later removes `p`
//     from current performs its exchange after the recheck in S — and
//     therefore scans the hazard slots after the reader's hazard store,
//     sees `p`, and waits.
//   - Retirement is safe because the publisher only frees `old` after
//     reading every slot != old; reading the reader's slot-clearing
//     store synchronizes-with it, ordering all of the reader's accesses
//     to *old before the delete.
//   - ABA on slot contents is benign: the publisher waits for slots
//     that equal `old` specifically, and a slot can only (re)acquire
//     `old` while `old` is still reachable via current — impossible
//     after the exchange.
//
// Registration: each server worker thread owns one SnapshotReader for
// its lifetime (a claimed hazard slot). The slot table is fixed-size;
// Register fails when more than kMaxReaders threads try to read, which
// the server sizes against its worker count.

#ifndef MICTREND_SERVE_SNAPSHOT_H_
#define MICTREND_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "medmodel/timeseries.h"
#include "mic/dataset.h"
#include "trend/pipeline.h"
#include "trend/trend_analyzer.h"

namespace mic::serve {

/// One immutable, fully analyzed version of the world. Built off the
/// query path (at startup and on ingest), then published wholesale.
struct WorldSnapshot {
  /// Publish sequence number, 1-based. Version v serves a world with
  /// `base_months + (v - 1)` months when every ingest appends one month
  /// — the consistency invariant the hammer test asserts.
  std::uint64_t version = 0;
  /// Months in this snapshot's corpus.
  std::size_t months = 0;
  /// ClaimStore::Fingerprint() of the store this world was loaded from.
  std::uint64_t store_fingerprint = 0;

  MicCorpus corpus;
  medmodel::SeriesSet series;
  trend::TrendReport report;
  /// The analyzer that produced `report` (carries the options used, for
  /// cause classification at query time).
  trend::TrendAnalyzer analyzer;

  /// The full report serialized by trend::WriteReportCsv at build time
  /// — byte-identical to the offline `mictrend pipeline --out` artifact
  /// for the same store and config, so serving it is a string copy.
  std::string report_csv;

  /// Precomputed drill-down trees, one per axis, indexed by
  /// static_cast<int>(trend::DrillAxis). Built through the same cache
  /// as the report, so warm rebuilds answer the aggregates from the
  /// "drill" namespace instead of refitting.
  std::vector<trend::DrillDownReport> drilldowns;
};

class SnapshotHub;

/// A claimed hazard slot. One per reader thread, held for the thread's
/// lifetime. Movable, not copyable.
class SnapshotReader {
 public:
  SnapshotReader() = default;
  SnapshotReader(SnapshotReader&& other) noexcept;
  SnapshotReader& operator=(SnapshotReader&& other) noexcept;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;
  ~SnapshotReader();

  bool registered() const { return hub_ != nullptr; }

 private:
  friend class SnapshotHub;
  SnapshotReader(SnapshotHub* hub, int slot) : hub_(hub), slot_(slot) {}

  SnapshotHub* hub_ = nullptr;
  int slot_ = -1;
};

/// A pinned snapshot: dereferenceable until destruction, which clears
/// the hazard slot. Scope it tightly — a long-lived pin stalls the next
/// publish. Not movable: it marks a critical section, not a value.
class SnapshotPin {
 public:
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;
  ~SnapshotPin();

  const WorldSnapshot& operator*() const { return *snapshot_; }
  const WorldSnapshot* operator->() const { return snapshot_; }
  const WorldSnapshot* get() const { return snapshot_; }

 private:
  friend class SnapshotHub;
  SnapshotPin(SnapshotHub* hub, int slot, const WorldSnapshot* snapshot)
      : hub_(hub), slot_(slot), snapshot_(snapshot) {}

  SnapshotHub* hub_;
  int slot_;
  const WorldSnapshot* snapshot_;
};

/// Holds the current snapshot and coordinates lock-free readers with
/// the (serialized) publisher. See the file comment for the protocol.
class SnapshotHub {
 public:
  static constexpr int kMaxReaders = 64;

  SnapshotHub() = default;
  SnapshotHub(const SnapshotHub&) = delete;
  SnapshotHub& operator=(const SnapshotHub&) = delete;
  /// Deletes the current snapshot. All readers must be gone.
  ~SnapshotHub();

  /// Claims a hazard slot for the calling thread. FailedPrecondition
  /// when all kMaxReaders slots are taken.
  Result<SnapshotReader> Register();

  /// Pins the current snapshot for reading. Lock-free and wait-free on
  /// the reader side (the retry loop only iterates when a publish
  /// landed between the load and the recheck, which is bounded by the
  /// publish rate, not by other readers). `reader` must be registered
  /// and must not already hold a pin.
  SnapshotPin Acquire(const SnapshotReader& reader);

  /// Publishes `next` (ownership transfers to the hub), waits for every
  /// reader still pinning the previous snapshot to drain, deletes it,
  /// and returns the drain wait in seconds (0.0 for the first publish).
  /// Callers serialize publishes (the service's ingest mutex).
  double Publish(const WorldSnapshot* next);

  /// The current snapshot without pinning. Only safe where publication
  /// is excluded — e.g. on the publisher thread itself under the ingest
  /// mutex. Null before the first Publish.
  const WorldSnapshot* UnsafeCurrent() const {
    return current_.load(std::memory_order_seq_cst);
  }

 private:
  friend class SnapshotReader;
  friend class SnapshotPin;

  struct alignas(64) HazardSlot {
    std::atomic<const WorldSnapshot*> pointer{nullptr};
    std::atomic<bool> claimed{false};
  };

  void Unregister(int slot);
  void ClearPin(int slot);

  std::atomic<const WorldSnapshot*> current_{nullptr};
  HazardSlot slots_[kMaxReaders];
};

/// Builds a fully analyzed snapshot (version `version`) from the world
/// currently held by `store`: loads the corpus, runs the trend pipeline
/// with `config` under `context` (context.cache drives warm starts),
/// and precomputes the report CSV. Runs off the query path.
Result<const WorldSnapshot*> BuildSnapshot(std::uint64_t version,
                                           const store::ClaimStore& store,
                                           const trend::PipelineConfig& config,
                                           const ExecContext& context);

}  // namespace mic::serve

#endif  // MICTREND_SERVE_SNAPSHOT_H_
