// The declarative endpoint registry: one table describing every framed
// op — its name, whether it mutates the world, its typed parameter
// schema, and how a CLI client should treat the response body. The
// table is the single source of truth shared by:
//   - the service dispatcher (src/serve/service.cc): request routing,
//     per-op metric slots, and pre-handler validation (unknown
//     parameters are REJECTED with bad_request naming the offender —
//     a protocol-version-2 behavior; see docs/serve_protocol.md),
//   - the CLI (`mictrend query`, tools/): per-op flag validation and
//     request assembly, plus generated usage text,
//   - the docs: serve_protocol.md's endpoint list mirrors this table
//     and cli_smoke cross-checks the generated op list against it.
//
// Handlers are intentionally NOT in the table — the registry has no
// dependency on TrendService; the service binds table rows to member
// functions positionally (a static_assert keeps the two aligned).

#ifndef MICTREND_SERVE_REGISTRY_H_
#define MICTREND_SERVE_REGISTRY_H_

#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "serve/wire.h"

namespace mic::serve {

enum class ParamType : int {
  kString = 0,
  kInt = 1,
  kDouble = 2,
  kBool = 3,
  kStringList = 4,  // JSON array of strings; CLI comma-splits the flag.
  kIntList = 5,     // JSON array of integers; CLI comma-splits the flag.
};

/// Display name for usage text ("string", "int", ...).
std::string_view ParamTypeName(ParamType type);

/// One request parameter: `name` is the wire member; the CLI flag is
/// the name with '_' mapped to '-' (--snapshot-months for
/// "snapshot_months"). Validation here covers presence and JSON shape;
/// value semantics (positivity, name lookup, entry types) stay in
/// handlers.
struct ParamSpec {
  std::string_view name;
  ParamType type = ParamType::kString;
  bool required = false;
  /// One-line usage description (mentions defaults where helpful).
  std::string_view summary;
};

/// How `mictrend query --out` treats the response body.
enum class ResponseMode : int {
  /// Write the whole response envelope.
  kEnvelope = 0,
  /// Write the raw bytes of data[raw_member] (report_csv: the exact
  /// offline artifact, enabling byte comparison).
  kRawMember = 1,
  /// Write data's deterministic serialization (drilldown / explain:
  /// byte-comparable against the offline `mictrend drilldown` output).
  kDataOnly = 2,
};

struct EndpointSpec {
  std::string_view name;
  /// Mutating ops are dispatched without a snapshot pin (the publish
  /// path drains pins; holding one would self-deadlock) and serialize
  /// server-side.
  bool mutates = false;
  std::string_view summary;
  std::span<const ParamSpec> params;
  ResponseMode response = ResponseMode::kEnvelope;
  std::string_view raw_member;

  const ParamSpec* FindParam(std::string_view param) const;
};

/// Number of framed ops (= EndpointTable().size(); a static_assert in
/// registry.cc pins it). The service sizes its metric-slot array with
/// this at compile time.
inline constexpr std::size_t kNumEndpoints = 12;

/// Every framed op, in dispatch order (the service's metric slots and
/// handler table bind to this order).
std::span<const EndpointSpec> EndpointTable();

/// Table row by op name; nullptr for unknown ops.
const EndpointSpec* FindEndpoint(std::string_view op);

/// Index of `op` in EndpointTable(); EndpointTable().size() when
/// unknown (the metric catch-all slot).
std::size_t EndpointIndex(std::string_view op);

/// Schema validation for one request against `spec`:
///   - members other than "op" / "protocol" must be declared
///     parameters (unknown ones are rejected, naming the offender),
///   - required parameters must be present,
///   - present parameters must match their declared JSON shape.
/// All failures are InvalidArgument (=> bad_request on the wire).
Status ValidateRequest(const EndpointSpec& spec, const JsonValue& request);

/// Generated per-op usage lines for CLI help and docs cross-checks:
/// one "  <op> [params...]  summary" block per table row.
std::string BuildOpsUsageText();

}  // namespace mic::serve

#endif  // MICTREND_SERVE_REGISTRY_H_
