// Minimal HTTP/1.1 GET support on the daemon's TCP port — the
// exposition surface (/metrics, /healthz, /varz) and the first step
// toward the ROADMAP HTTP gateway.
//
// The daemon multiplexes HTTP onto the framed-JSON port by *peeking*
// (MSG_PEEK) the first four bytes of a fresh connection: "GET " or
// "HEAD" is an HTTP request line; anything else is a frame length
// prefix and the bytes are left unconsumed for ReadFrame. The peek is
// what makes the branch safe — "GET " read as a big-endian length
// would be ~1.2 GB and trip frame_too_large, so the decision has to
// happen before frame parsing.
//
// Scope is deliberately tiny: GET/HEAD only, request head bounded at
// 8 KiB, response always carries Content-Length and Connection: close
// (one request per connection — scrapes are periodic, not chatty).
// POST bodies, chunked encoding, and keep-alive belong to the future
// gateway, not here.

#ifndef MICTREND_SERVE_HTTP_H_
#define MICTREND_SERVE_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "serve/wire.h"

namespace mic::serve {

/// Parsed HTTP request line (headers are read to the blank line and
/// discarded — no current endpoint needs them).
struct HttpRequest {
  std::string method;  // "GET" or "HEAD"
  std::string target;  // as sent, query string included
  /// Bytes consumed off the socket for the whole request head.
  std::uint64_t bytes = 0;
};

/// Peeks (without consuming) the first four bytes of `fd`: true when
/// they spell an HTTP GET/HEAD request line. Respects the poll cadence
/// and `stop` like ReadFrame; NotFound on clean EOF before four bytes.
Result<bool> LooksLikeHttp(int fd, const WireLimits& limits,
                           const std::atomic<bool>* stop);

/// Reads one request head (through the CRLFCRLF terminator, capped at
/// 8 KiB) and parses the request line. FailedPrecondition on an
/// oversized or malformed head.
Result<HttpRequest> ReadHttpRequest(int fd, const WireLimits& limits,
                                    const std::atomic<bool>* stop);

/// Serializes a full response. `head_only` (HEAD requests) keeps the
/// Content-Length of the would-be body but omits the body itself.
std::string BuildHttpResponse(int status, std::string_view reason,
                              std::string_view content_type,
                              std::string_view body,
                              bool head_only = false);

/// Blocking best-effort write of the whole buffer (SIGPIPE
/// suppressed).
Status SendAll(int fd, std::string_view bytes);

}  // namespace mic::serve

#endif  // MICTREND_SERVE_HTTP_H_
