// Forecasting future prescriptions (paper §VIII-B2 / Fig. 9): fit the
// structural model (with AIC change point search) and the ARIMA
// baseline on a training window and compare their 12-month-ahead
// forecasts on a seasonal disease series. Also demonstrates CSV
// round-tripping of a corpus.

#include <cstdio>
#include <sstream>

#include "arima/arima.h"
#include "medmodel/timeseries.h"
#include "mic/io.h"
#include "ssm/changepoint.h"
#include "ssm/fit.h"
#include "stats/metrics.h"
#include "synth/generator.h"
#include "synth/scenario.h"

int main() {
  using namespace mic;

  synth::PaperWorldOptions options;
  options.num_months = 43;
  options.num_patients = 900;
  options.num_background_diseases = 0;
  auto world = synth::MakePaperWorld(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  // Demonstrate corpus IO: serialize and re-parse one month's records.
  {
    std::ostringstream out;
    if (Status status = WriteCorpusCsv(data->corpus, out); !status.ok()) {
      std::fprintf(stderr, "csv: %s\n", status.ToString().c_str());
      return 1;
    }
    std::istringstream in(out.str());
    auto round_trip = ReadCorpusCsv(in);
    if (!round_trip.ok()) {
      std::fprintf(stderr, "csv parse: %s\n",
                   round_trip.status().ToString().c_str());
      return 1;
    }
    std::printf("CSV round trip: %zu records -> %zu records\n",
                data->corpus.TotalRecords(), round_trip->TotalRecords());
  }

  auto series_set = medmodel::ReproduceSeries(data->corpus);
  if (!series_set.ok()) {
    std::fprintf(stderr, "series: %s\n",
                 series_set.status().ToString().c_str());
    return 1;
  }
  std::vector<double> series = series_set->Disease(
      *world->FindDisease(synth::names::kInfluenza));

  constexpr int kTrain = 31;
  constexpr int kHorizon = 12;
  const std::vector<double> train(series.begin(), series.begin() + kTrain);
  const std::vector<double> actual(series.begin() + kTrain,
                                   series.begin() + kTrain + kHorizon);

  // Proposed: LL+S+I, change point searched on the training window.
  ssm::ChangePointOptions detector_options;
  detector_options.seasonal = true;
  detector_options.aic_margin = 4.0;
  detector_options.min_tail_observations = 4;
  ssm::ChangePointDetector detector(train, detector_options);
  auto detected = detector.DetectExact();
  if (!detected.ok()) {
    std::fprintf(stderr, "detect: %s\n",
                 detected.status().ToString().c_str());
    return 1;
  }
  auto structural =
      ssm::ForecastStructural(detected->best_model, train, kHorizon);

  // Baseline: AIC-selected ARIMA.
  auto arima_model = arima::SelectArima(train);
  Result<std::vector<double>> arima_forecast =
      Status::NotFound("ARIMA not fitted");
  if (arima_model.ok()) {
    arima_forecast = arima::ForecastArima(*arima_model, train, kHorizon);
  }

  std::printf("\ninfluenza: last 12 months actual vs forecasts\n");
  std::printf("%-10s %10s %12s %10s\n", "month", "actual", "structural",
              "ARIMA");
  for (int h = 0; h < kHorizon; ++h) {
    std::printf("%-10d %10.1f %12.1f %10.1f\n", kTrain + h, actual[h],
                structural.ok() ? structural->mean[h] : 0.0,
                arima_forecast.ok() ? (*arima_forecast)[h] : 0.0);
  }
  if (structural.ok()) {
    std::printf("\nstructural RMSE: %.1f\n",
                *stats::Rmse(structural->mean, actual));
  }
  if (arima_forecast.ok() && arima_model.ok()) {
    std::printf("ARIMA(%d,%d,%d) RMSE: %.1f\n", arima_model->order.p,
                arima_model->order.d, arima_model->order.q,
                *stats::Rmse(*arima_forecast, actual));
  }
  std::printf("\n(the structural model carries the 12-month seasonal into\n"
              "the forecast; low-order ARIMA cannot — paper Fig. 9)\n");
  return 0;
}
