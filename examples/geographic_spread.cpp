// Geographical prescription spread (paper §VII-B): per-city medication
// models track how generic medicines displace an original drug city by
// city after their release — the analysis a payer would run to find
// areas where generics should be encouraged.

#include <cstdio>

#include "apps/geo_spread.h"
#include "synth/generator.h"
#include "synth/scenario.h"

int main() {
  using namespace mic;

  synth::PaperWorldOptions options;
  options.num_months = 43;
  options.num_patients = 900;
  options.num_background_diseases = 0;
  auto world = synth::MakePaperWorld(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  const Catalog& catalog = data->corpus.catalog();
  const std::vector<const char*> names = {
      synth::names::kAntiPlateletOriginal,
      synth::names::kAntiPlateletGeneric1,
      synth::names::kAntiPlateletGeneric2,
      synth::names::kAntiPlateletGeneric3};
  std::vector<MedicineId> group;
  for (const char* name : names) {
    group.push_back(*catalog.medicines().Lookup(name));
  }

  apps::GeoSpreadOptions geo;
  geo.reproducer.min_series_total = 0.0;
  geo.reproducer.filter_options.min_disease_count = 1;
  geo.reproducer.filter_options.min_medicine_count = 1;
  const int entry = synth::PaperWorldEvents::kGenericEntry;
  geo.snapshot_months = {entry - 1, entry + 1, entry + 12};
  auto report = apps::AnalyzeGeoSpread(data->corpus, group, geo);
  if (!report.ok()) {
    std::fprintf(stderr, "geo: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("generic share of the anti-platelet market by city\n");
  std::printf("%-12s %22s %22s %22s\n", "city", "1 month before entry",
              "1 month after entry", "1 year after entry");
  for (std::uint32_t c = 0; c < catalog.cities().size(); ++c) {
    const CityId city(c);
    std::printf("%-12s", catalog.cities().Name(city).c_str());
    for (std::size_t snapshot = 0; snapshot < 3; ++snapshot) {
      double generic_share = 0.0;
      for (std::size_t g = 1; g < group.size(); ++g) {
        generic_share += report->Share(city, group[g], group, snapshot);
      }
      std::printf(" %21.1f%%", 100.0 * generic_share);
    }
    std::printf("\n");
  }
  std::printf(
      "\ncities still dominated by the original one year after entry are\n"
      "candidates for generic-promotion campaigns (paper Fig. 8).\n");
  return 0;
}
