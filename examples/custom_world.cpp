// Defining a custom synthetic world from a configuration file and
// running the full pipeline on it — the workflow for experimenting with
// claim dynamics the built-in scenarios do not cover.
//
// The same configuration format drives `mictrend generate --world`.

#include <cstdio>
#include <sstream>

#include "ssm/decompose.h"
#include "synth/generator.h"
#include "synth/world_io.h"
#include "trend/pipeline.h"

int main() {
  using namespace mic;

  // A compact world: one seasonal disease, one chronic disease whose
  // medicine loses favor mid-window, and one late-released competitor.
  const char* world_text = R"(
config,months=36,start_month=0,seed=424242
hospitals,count=8,small=0.6,medium=0.3,large=0.1
patients,count=600,visit=0.45,boost=0.3,acute=1.6

city,east,weight=1.0
city,west,weight=1.0

disease,winter-flu,weight=1.6,amplitude=1.0,peak=0,sharpness=2.5,intensity=1.0
# A stable background condition keeps the acute-draw denominator sane;
# without it, summer records would draw ALL their acute mentions from
# the one remaining disease.
disease,back-pain,weight=1.2,intensity=1.0
disease,chronic-gout,weight=0.02,chronic=0.3,intensity=0.9

medicine,flu-remedy,indication=winter-flu:1.0
medicine,pain-gel,indication=back-pain:1.0
medicine,gout-classic,propensity=1.4,indication=chronic-gout:1.0,propensity_event=18:0.35:4
medicine,gout-next,release=18,propensity=1.4,indication=chronic-gout:1.0,propensity_event=0:0.2:0,propensity_event=18:1.0:16,city_delay=west:6
)";

  std::istringstream in(world_text);
  auto config = synth::ReadWorldConfig(in);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  auto world = synth::World::Create(*config);
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu records over %zu months\n",
              data->corpus.TotalRecords(), data->corpus.num_months());

  trend::PipelineConfig options;
  options.reproducer.min_series_total = 20.0;
  options.analyzer.use_approximate = false;
  auto result = trend::RunPipeline(data->corpus, options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const Catalog& catalog = data->corpus.catalog();
  std::printf("\ndetected medicine-level changes (gout-classic should "
              "decline, gout-next rise around month 18):\n");
  for (const trend::SeriesAnalysis& analysis : result->report.medicines) {
    if (!analysis.has_change) continue;
    std::printf("  %-14s month %2d  lambda %+7.2f/mo\n",
                catalog.medicines().Name(analysis.medicine).c_str(),
                analysis.change_point, analysis.lambda);
  }

  // Decompose the seasonal disease to show the seasonal component.
  const auto flu_series = result->series.Disease(
      *catalog.diseases().Lookup("winter-flu"));
  std::vector<double> normalized = flu_series;
  double sd = 0.0;
  {
    double mean = 0.0;
    for (double value : flu_series) mean += value;
    mean /= static_cast<double>(flu_series.size());
    for (double value : flu_series) {
      sd += (value - mean) * (value - mean);
    }
    sd = std::sqrt(sd / static_cast<double>(flu_series.size() - 1));
    for (double& value : normalized) value /= sd;
  }
  ssm::StructuralSpec spec;
  spec.seasonal = true;
  auto fitted = ssm::FitStructuralModel(normalized, spec);
  if (fitted.ok()) {
    auto decomposition = ssm::Decompose(*fitted, normalized);
    if (decomposition.ok()) {
      std::printf("\nwinter-flu seasonal component (first 12 months, "
                  "original units):\n ");
      for (int t = 0; t < 12; ++t) {
        std::printf(" %7.1f", decomposition->seasonal[t] * sd);
      }
      std::printf("\n");
    }
  }
  return 0;
}
