// Inter-hospital prescription gap analysis (paper §VII-C): per
// hospital-size-class medication models expose prescribing practice
// differences — here, small clinics prescribing an antibiotic for
// virus-caused diseases (cold syndrome, influenza), the paper's
// antibiotic-stewardship use case (Table II).

#include <cstdio>

#include "apps/hospital_gap.h"
#include "synth/generator.h"
#include "synth/scenario.h"

int main() {
  using namespace mic;

  synth::PaperWorldOptions options;
  options.num_months = 24;
  options.num_patients = 900;
  options.num_background_diseases = 4;
  auto world = synth::MakePaperWorld(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  const Catalog& catalog = data->corpus.catalog();
  const MedicineId antibiotic =
      *catalog.medicines().Lookup(synth::names::kAntibiotic);

  apps::HospitalGapOptions gap;
  gap.reproducer.min_series_total = 0.0;
  gap.reproducer.filter_options.min_disease_count = 1;
  gap.reproducer.filter_options.min_medicine_count = 1;
  gap.top_k = 8;
  auto report = apps::AnalyzeHospitalGap(data->corpus, antibiotic, gap);
  if (!report.ok()) {
    std::fprintf(stderr, "gap: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("diseases the antibiotic is prescribed for, by hospital "
              "class:\n\n");
  for (const apps::HospitalClassRanking& ranking : report->classes) {
    std::printf("%s hospitals (%.0f prescriptions):\n",
                std::string(HospitalClassName(ranking.hospital_class))
                    .c_str(),
                ranking.total_prescriptions);
    for (const apps::DiseaseShare& share : ranking.top_diseases) {
      const std::string& name = catalog.diseases().Name(share.disease);
      const bool viral =
          name == synth::names::kColdSyndrome ||
          name == synth::names::kInfluenza;
      std::printf("  %-42s %7.2f%%%s\n", name.c_str(),
                  100.0 * share.ratio,
                  viral ? "   <-- virus-caused: antibiotic misuse" : "");
    }
    std::printf("\n");
  }
  return 0;
}
