// Quickstart: the smallest end-to-end tour of the mictrend API.
//
//   1. build a synthetic MIC world and generate monthly claim records;
//   2. fit the latent medication model to one month and inspect the
//      recovered disease -> medicine links (Phi);
//   3. reproduce monthly prescription time series for every pair;
//   4. run AIC change point detection on one series and decompose it.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "medmodel/medication_model.h"
#include "medmodel/timeseries.h"
#include "ssm/changepoint.h"
#include "ssm/decompose.h"
#include "synth/generator.h"
#include "synth/scenario.h"

int main() {
  using namespace mic;

  // 1. A tiny world: 3 diseases, 4 medicines (one released mid-window),
  //    300 patients, 24 months.
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24));
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu MIC records over %zu months\n",
              data->corpus.TotalRecords(), data->corpus.num_months());

  // 2. Fit the medication model to the first month.
  auto model = medmodel::MedicationModel::Fit(data->corpus.month(0));
  if (!model.ok()) {
    std::fprintf(stderr, "fit: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const Catalog& catalog = data->corpus.catalog();
  std::printf("\nEM converged in %d iterations; recovered links "
              "phi(disease -> medicine):\n",
              (*model)->fit_stats().iterations);
  for (const char* disease : {"flu", "bp", "pain"}) {
    const DiseaseId d = *catalog.diseases().Lookup(disease);
    std::printf("  %-5s:", disease);
    for (const char* medicine :
         {"antiviral", "depressor", "analgesic", "new-drug"}) {
      auto m = catalog.medicines().Lookup(medicine);
      if (m.ok()) {
        std::printf(" %s=%.2f", medicine, (*model)->Phi(d, *m));
      }
    }
    std::printf("\n");
  }

  // 3. Reproduce all monthly prescription series (Eq. 7).
  medmodel::ReproducerOptions options;
  options.filter_options.min_disease_count = 1;
  options.filter_options.min_medicine_count = 1;
  options.min_series_total = 5.0;
  auto series = medmodel::ReproduceSeries(data->corpus, options);
  if (!series.ok()) {
    std::fprintf(stderr, "series: %s\n",
                 series.status().ToString().c_str());
    return 1;
  }
  std::printf("\nreproduced %zu prescription series\n",
              series->num_pairs());

  // 4. Change point detection on the new drug's series.
  const MedicineId new_drug = *catalog.medicines().Lookup("new-drug");
  std::vector<double> drug_series = series->Medicine(new_drug);
  std::printf("\nnew-drug monthly series:");
  for (double v : drug_series) std::printf(" %.0f", v);
  std::printf("\n");

  ssm::ChangePointOptions detector_options;
  detector_options.seasonal = false;  // 24 months; keep the model small.
  // Require a few post-break months so an end-of-window outlier is not
  // mistaken for a trend change.
  detector_options.min_tail_observations = 3;
  ssm::ChangePointDetector detector(drug_series, detector_options);
  // Exhaustive Algorithm 1; swap in DetectApproximate() (Algorithm 2)
  // for a ~log(T)/T fraction of the cost on long windows.
  auto detected = detector.DetectExact();
  if (!detected.ok()) {
    std::fprintf(stderr, "detect: %s\n",
                 detected.status().ToString().c_str());
    return 1;
  }
  if (detected->has_change) {
    std::printf("change detected at month %d (release was month %d); "
                "AIC %.1f vs %.1f without intervention\n",
                detected->change_point, 24 / 2, detected->best_aic,
                detected->aic_without_intervention);
    auto decomposition = ssm::Decompose(detected->best_model, drug_series);
    if (decomposition.ok()) {
      std::printf("intervention slope lambda = %.2f prescriptions/month\n",
                  decomposition->lambda);
    }
  } else {
    std::printf("no change detected (AIC %.1f)\n", detected->best_aic);
  }
  return 0;
}
