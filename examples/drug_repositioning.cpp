// Clinically-based drug repositioning screening (paper §I / §IX): scan
// all prescription series for new-indication signatures — isolated,
// rising breaks on pairs with near-zero prior use. On the synthetic
// paper world the screen should surface the two scripted indication
// expansions (dementia drug -> Lewy body dementia; COPD bronchodilator
// -> bronchial asthma).

#include <cstdio>

#include "apps/repositioning.h"
#include "medmodel/timeseries.h"
#include "synth/generator.h"
#include "synth/scenario.h"

int main() {
  using namespace mic;

  synth::PaperWorldOptions options;
  options.num_months = 43;
  options.num_patients = 900;
  options.num_background_diseases = 6;
  auto world = synth::MakePaperWorld(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  medmodel::ReproducerOptions reproducer;
  reproducer.min_series_total = 30.0;
  auto series = medmodel::ReproduceSeries(data->corpus, reproducer);
  if (!series.ok()) {
    std::fprintf(stderr, "series: %s\n",
                 series.status().ToString().c_str());
    return 1;
  }

  trend::TrendAnalyzerOptions analyzer_options;
  analyzer_options.use_approximate = false;  // Exact for final screening.
  trend::TrendAnalyzer analyzer(analyzer_options);
  auto report = analyzer.AnalyzeAll(mic::ExecContext{}, *series);
  if (!report.ok()) {
    std::fprintf(stderr, "analyze: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  apps::RepositioningOptions screen;
  screen.min_evidence = 4.0;
  auto candidates = apps::ScreenRepositioningCandidates(
      *series, *report, analyzer, screen);
  if (!candidates.ok()) {
    std::fprintf(stderr, "screen: %s\n",
                 candidates.status().ToString().c_str());
    return 1;
  }

  const Catalog& catalog = data->corpus.catalog();
  std::printf("drug repositioning candidates (new-indication signatures), "
              "strongest first:\n\n");
  std::printf("%-26s %-26s %6s %9s %10s %12s\n", "medicine", "disease",
              "month", "slope/mo", "evidence", "prior share");
  for (const apps::RepositioningCandidate& candidate : *candidates) {
    std::printf("%-26s %-26s %6d %9.2f %10.1f %11.1f%%\n",
                catalog.medicines().Name(candidate.medicine).c_str(),
                catalog.diseases().Name(candidate.disease).c_str(),
                candidate.change_point, candidate.lambda,
                candidate.evidence, 100.0 * candidate.prior_share);
  }
  std::printf(
      "\nscripted ground truth: dementia-drug gained lewy-body-dementia at"
      " t=%d;\nbronchodilator-copd gained bronchial-asthma at t=%d.\n",
      synth::PaperWorldEvents::kLewyIndicationExpansion,
      synth::PaperWorldEvents::kAsthmaIndicationExpansion);
  return 0;
}
