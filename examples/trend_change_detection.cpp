// Temporal prescription change detection (paper §VII-A): the full
// pipeline of Fig. 1 — claims -> medication model -> reproduced series
// -> state space change detection -> cause classification.
//
// Prints every detected change with its attributed cause
// (disease-derived / medicine-derived / prescription-derived).

#include <cstdio>

#include "medmodel/timeseries.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/trend_analyzer.h"

int main() {
  using namespace mic;

  synth::PaperWorldOptions options;
  options.num_months = 43;
  options.num_patients = 900;
  options.num_background_diseases = 6;
  auto world = synth::MakePaperWorld(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("corpus: %zu records, %zu months\n",
              data->corpus.TotalRecords(), data->corpus.num_months());

  medmodel::ReproducerOptions reproducer;
  reproducer.min_series_total = 30.0;  // Focus on substantial series.
  auto series = medmodel::ReproduceSeries(data->corpus, reproducer);
  if (!series.ok()) {
    std::fprintf(stderr, "series: %s\n",
                 series.status().ToString().c_str());
    return 1;
  }
  std::printf("series: %zu diseases, %zu medicines, %zu prescriptions\n",
              series->num_diseases(), series->num_medicines(),
              series->num_pairs());

  trend::TrendAnalyzerOptions analyzer_options;
  analyzer_options.use_approximate = true;  // Algorithm 2 for speed.
  trend::TrendAnalyzer analyzer(analyzer_options);
  auto report = analyzer.AnalyzeAll(mic::ExecContext{}, *series);
  if (!report.ok()) {
    std::fprintf(stderr, "analyze: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const Catalog& catalog = data->corpus.catalog();
  std::printf("\nchanges: %zu disease, %zu medicine, %zu prescription\n",
              report->CountChanges(trend::SeriesKind::kDisease),
              report->CountChanges(trend::SeriesKind::kMedicine),
              report->CountChanges(trend::SeriesKind::kPrescription));

  std::printf("\nmedicine-level changes:\n");
  for (const trend::SeriesAnalysis& analysis : report->medicines) {
    if (!analysis.has_change) continue;
    std::printf("  %-28s month %2d  lambda %+7.2f/mo  (AIC %.1f vs %.1f)\n",
                catalog.medicines().Name(analysis.medicine).c_str(),
                analysis.change_point, analysis.lambda, analysis.aic,
                analysis.aic_without_intervention);
  }

  std::printf("\nprescription-level changes with attributed cause:\n");
  for (const trend::SeriesAnalysis& analysis : report->prescriptions) {
    if (!analysis.has_change) continue;
    const trend::ChangeCause cause =
        analyzer.ClassifyPrescriptionChange(*report, analysis);
    std::printf("  %-24s x %-24s month %2d  %s\n",
                catalog.diseases().Name(analysis.disease).c_str(),
                catalog.medicines().Name(analysis.medicine).c_str(),
                analysis.change_point,
                std::string(trend::ChangeCauseName(cause)).c_str());
  }
  return 0;
}
